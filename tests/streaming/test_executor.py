"""Unit tests for the executor backends and the sharding primitives."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.candidates import match_candidates, resolve_match_kernel
from repro.streaming.executor import (
    BACKENDS,
    ProcessExecutor,
    ResidentProcessExecutor,
    ResidentProtocolError,
    ResidentSerialExecutor,
    ResidentShardWorker,
    ResidentThreadExecutor,
    SerialExecutor,
    ShardWorkerCrashed,
    ThreadExecutor,
    resolve_executor,
    resolve_resident_executor,
)
from repro.streaming.sharding import rendezvous_shard

#: Spawned workers re-import this module and must see the import-time
#: value; a fork-started worker would inherit the parent's mutation.
_SPAWN_CANARY = "import-time"


def _double(x):
    """Module-level so the process backend can pickle it by reference."""
    return 2 * x


def _boom(_x):
    raise RuntimeError("worker failure")


def _worker_identity(_task):
    """Report the worker's process name and the module canary."""
    return multiprocessing.current_process().name, _SPAWN_CANARY


class TestBackendsBehaveIdentically:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_preserves_task_order(self, name):
        backend = resolve_executor(name)
        try:
            assert backend.map(_double, [3, 1, 2, 7]) == [6, 2, 4, 14]
            # A second map on the same backend reuses the pool.
            assert backend.map(_double, [5]) == [10]
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_task_list(self, name):
        backend = resolve_executor(name)
        try:
            assert backend.map(_double, []) == []
        finally:
            backend.close()

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_worker_exception_propagates(self, name):
        backend = resolve_executor(name)
        try:
            with pytest.raises(RuntimeError, match="worker failure"):
                backend.map(_boom, [1])
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_close_is_idempotent_and_reusable(self, name):
        backend = resolve_executor(name)
        backend.map(_double, [1])
        backend.close()
        backend.close()
        # A closed pooled backend lazily rebuilds its pool on reuse.
        assert backend.map(_double, [4]) == [8]
        backend.close()

    def test_match_kernel_crosses_the_process_boundary(self):
        """The actual shard payload shape survives pickling round trips."""
        members = [frozenset({"a", "b", "c"}), frozenset({"d", "e"})]
        jobs = [(0, frozenset({"a", "b"}), None),
                (1, frozenset({"d", "e"}), (1,))]
        backend = ProcessExecutor(max_workers=1)
        try:
            parts = backend.map(_kernel_task, [(members, jobs, 2)])
        finally:
            backend.close()
        assert parts == [match_candidates(members, jobs, 2)]


def _kernel_task(task):
    members, jobs, m = task
    return match_candidates(members, jobs, m)


class TestResolveExecutor:
    def test_none_and_serial_resolve_to_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_names_resolve(self):
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_custom_backend_passes_through(self):
        class Custom:
            def map(self, fn, tasks):
                return [fn(t) for t in tasks]

            def close(self):
                pass

        custom = Custom()
        assert resolve_executor(custom) is custom

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("gpu")
        with pytest.raises(ValueError, match="executor"):
            resolve_executor(42)

    def test_process_chunksize_validated(self):
        with pytest.raises(ValueError, match="chunksize"):
            ProcessExecutor(chunksize=0)


class TestProcessExecutorContext:
    def test_workers_are_spawned_and_named(self):
        """The pool pins an explicit spawn context (never the platform
        default) and names its workers: a worker must report the
        module's import-time canary — a fork child would inherit the
        parent's mutation — and the initializer-set process name."""
        global _SPAWN_CANARY
        before = _SPAWN_CANARY
        _SPAWN_CANARY = "parent-mutated"
        backend = ProcessExecutor(max_workers=1)
        try:
            [(name, canary)] = backend.map(_worker_identity, [None])
        finally:
            backend.close()
            _SPAWN_CANARY = before
        assert name == "repro-shard-worker"
        assert canary == "import-time"

    def test_explicit_context_accepted(self):
        backend = ProcessExecutor(max_workers=1, mp_context="spawn")
        try:
            assert backend.map(_double, [21]) == [42]
        finally:
            backend.close()

    def test_alive_tracks_pool_lifetime(self):
        backend = ProcessExecutor(max_workers=1)
        assert not backend.alive
        backend.map(_double, [1])
        assert backend.alive
        backend.close()
        assert not backend.alive


def _batches(shards=(0, 1)):
    """One init + one step per shard: the protocol's real message shapes."""
    members = [frozenset({"a", "b", "c"}), frozenset({"d", "e", "f"})]
    out = []
    for shard in shards:
        out.append((shard, [
            ("init", 2, "python",
             [(10 + shard, frozenset({"a", "b", "x"})),
              (20 + shard, frozenset({"d", "e"}))]),
            ("step", members,
             (("put", 30 + shard, frozenset({"a", "c"})),
              ("drop", 20 + shard)),
             ((0, 10 + shard, None), (1, 30 + shard, (0,)))),
        ]))
    return out


#: Expected step responses for :func:`_batches` (shard-independent).
_EXPECTED_STEP = ((0, (0,)), (1, (0,)))


class TestResidentShardWorker:
    def test_protocol_round_trip(self):
        worker = ResidentShardWorker()
        [(_, messages)] = _batches(shards=(0,))
        assert worker.handle(messages[0]) == ("ok", 2)
        assert worker.handle(messages[1]) == _EXPECTED_STEP
        assert worker.handle(("snapshot",)) == {
            10: frozenset({"a", "b", "x"}),
            30: frozenset({"a", "c"}),
        }
        pid, name, kernel, population = worker.handle(("probe",))
        assert pid == os.getpid()
        assert kernel == resolve_match_kernel("python").__name__
        assert population == 2

    def test_init_replaces_state_wholesale(self):
        worker = ResidentShardWorker()
        worker.handle(("init", 2, "python", [(1, frozenset({"a", "b"}))]))
        worker.handle(("init", 2, "python", [(2, frozenset({"c", "d"}))]))
        assert worker.handle(("snapshot",)) == {2: frozenset({"c", "d"})}

    def test_strict_validation(self):
        worker = ResidentShardWorker()
        with pytest.raises(ResidentProtocolError, match="before init"):
            worker.handle(("step", [frozenset({"a", "b"})], (),
                           ((0, 1, None),)))
        worker.handle(("init", 2, "python", []))
        with pytest.raises(ResidentProtocolError, match="unknown chain"):
            worker.handle(("step", (), (("drop", 7),), ()))
        with pytest.raises(ResidentProtocolError, match="unknown chain"):
            worker.handle(("step", [frozenset({"a", "b"})], (),
                           ((0, 99, None),)))
        with pytest.raises(ResidentProtocolError, match="unknown delta op"):
            worker.handle(("step", (), (("merge", 1, 2),), ()))
        with pytest.raises(ResidentProtocolError, match="unknown resident"):
            worker.handle(("rebalance",))


class TestResidentTransports:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_transports_agree_on_the_protocol(self, name):
        backend = resolve_resident_executor(name)
        try:
            responses = backend.run(_batches())
        finally:
            backend.close()
        assert responses == [
            [("ok", 2), _EXPECTED_STEP],
            [("ok", 2), _EXPECTED_STEP],
        ]

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_state_persists_across_runs(self, name):
        backend = resolve_resident_executor(name)
        try:
            backend.run([(0, [("init", 2, "python",
                               [(1, frozenset({"a", "b"}))])])])
            [[snapshot]] = backend.run([(0, [("snapshot",)])])
            assert snapshot == {1: frozenset({"a", "b"})}
        finally:
            backend.close()

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_generation_bumps_on_restart_and_close(self, name):
        backend = resolve_resident_executor(name)
        try:
            gen = backend.generation(3)
            assert backend.generation(3) == gen
            backend.restart(3)
            assert backend.generation(3) == gen + 1
            backend.close()
            assert backend.generation(3) == gen + 2
        finally:
            backend.close()

    def test_resolve_resident_executor(self):
        assert isinstance(resolve_resident_executor(None),
                          ResidentSerialExecutor)
        assert isinstance(resolve_resident_executor("thread"),
                          ResidentThreadExecutor)
        assert isinstance(resolve_resident_executor("process"),
                          ResidentProcessExecutor)

        class Custom:
            def run(self, batches):
                return []

            def generation(self, shard):
                return 0

            def close(self):
                pass

        custom = Custom()
        assert resolve_resident_executor(custom) is custom
        # A map-shaped (stateless) backend is not a resident transport.
        with pytest.raises(ValueError, match="resident executor"):
            resolve_resident_executor(SerialExecutor())
        with pytest.raises(ValueError, match="resident executor"):
            resolve_resident_executor("gpu")


class TestResidentProcessExecutor:
    """The spawned per-shard pools: state residency, kernel resolution
    from the backend *name*, crash semantics.  One class so the
    expensive pool startups stay few."""

    def test_state_resides_in_a_named_spawned_worker(self):
        backend = ResidentProcessExecutor()
        try:
            backend.run([(0, [("init", 2, "vector",
                               [(1, frozenset({"a", "b"}))])])])
            pid, name, kernel, population = backend.probe(0)
            # Real process residency, not an in-process fallback.
            assert pid != os.getpid()
            assert name == "repro-resident-shard-0"
            # The worker resolved its kernel from the backend name
            # shipped in init — the spawned process imported and chose
            # the vector kernel itself (nothing callable was pickled).
            assert kernel == resolve_match_kernel("vector").__name__
            assert population == 1
            # Same worker, same state, next round trip.
            [[snapshot]] = backend.run([(0, [("snapshot",)])])
            assert snapshot == {1: frozenset({"a", "b"})}
        finally:
            backend.close()
        assert not backend.alive

    def test_worker_crash_is_named_and_recoverable(self):
        backend = ResidentProcessExecutor()
        try:
            gen = backend.generation(0)
            backend.run([(0, [("init", 2, "python",
                               [(1, frozenset({"a", "b"}))])])])
            pid, _name, _kernel, _population = backend.probe(0)
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            with pytest.raises(ShardWorkerCrashed, match="shard 0") as info:
                backend.run([(0, [("snapshot",)])])
            # Promptly, not a hang (generous CI allowance).
            assert time.monotonic() < deadline
            assert info.value.shard == 0
            # The broken pool is gone; close still succeeds.
            backend.close()
            # A fresh use rebuilds the pool under a new generation, so
            # the tracker knows to re-seed the worker's state.
            assert backend.generation(0) > gen
            responses = backend.run(_batches(shards=(0,)))
            assert responses == [[("ok", 2), _EXPECTED_STEP]]
        finally:
            backend.close()


class TestRendezvousShard:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 8):
            for key in range(50):
                shard = rendezvous_shard(key, n)
                assert 0 <= shard < n
                assert shard == rendezvous_shard(key, n)

    def test_spreads_keys(self):
        hit = {rendezvous_shard(key, 4) for key in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_minimal_movement_on_resize(self):
        """Growing n -> n+1 only moves keys the new shard wins."""
        keys = list(range(300))
        before = {key: rendezvous_shard(key, 4) for key in keys}
        after = {key: rendezvous_shard(key, 5) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Every moved key must have moved *to* the new shard.
        assert all(after[key] == 4 for key in moved)
        # And roughly 1/5 of keys move (loose bound against regressions).
        assert len(moved) < len(keys) // 2

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            rendezvous_shard("key", 0)
