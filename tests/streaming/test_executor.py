"""Unit tests for the executor backends and the sharding primitives."""

import pytest

from repro.core.candidates import match_candidates
from repro.streaming.executor import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.streaming.sharding import rendezvous_shard


def _double(x):
    """Module-level so the process backend can pickle it by reference."""
    return 2 * x


def _boom(_x):
    raise RuntimeError("worker failure")


class TestBackendsBehaveIdentically:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_preserves_task_order(self, name):
        backend = resolve_executor(name)
        try:
            assert backend.map(_double, [3, 1, 2, 7]) == [6, 2, 4, 14]
            # A second map on the same backend reuses the pool.
            assert backend.map(_double, [5]) == [10]
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_task_list(self, name):
        backend = resolve_executor(name)
        try:
            assert backend.map(_double, []) == []
        finally:
            backend.close()

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_worker_exception_propagates(self, name):
        backend = resolve_executor(name)
        try:
            with pytest.raises(RuntimeError, match="worker failure"):
                backend.map(_boom, [1])
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_close_is_idempotent_and_reusable(self, name):
        backend = resolve_executor(name)
        backend.map(_double, [1])
        backend.close()
        backend.close()
        # A closed pooled backend lazily rebuilds its pool on reuse.
        assert backend.map(_double, [4]) == [8]
        backend.close()

    def test_match_kernel_crosses_the_process_boundary(self):
        """The actual shard payload shape survives pickling round trips."""
        members = [frozenset({"a", "b", "c"}), frozenset({"d", "e"})]
        jobs = [(0, frozenset({"a", "b"}), None),
                (1, frozenset({"d", "e"}), (1,))]
        backend = ProcessExecutor(max_workers=1)
        try:
            parts = backend.map(_kernel_task, [(members, jobs, 2)])
        finally:
            backend.close()
        assert parts == [match_candidates(members, jobs, 2)]


def _kernel_task(task):
    members, jobs, m = task
    return match_candidates(members, jobs, m)


class TestResolveExecutor:
    def test_none_and_serial_resolve_to_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_names_resolve(self):
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_custom_backend_passes_through(self):
        class Custom:
            def map(self, fn, tasks):
                return [fn(t) for t in tasks]

            def close(self):
                pass

        custom = Custom()
        assert resolve_executor(custom) is custom

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("gpu")
        with pytest.raises(ValueError, match="executor"):
            resolve_executor(42)

    def test_process_chunksize_validated(self):
        with pytest.raises(ValueError, match="chunksize"):
            ProcessExecutor(chunksize=0)


class TestRendezvousShard:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 8):
            for key in range(50):
                shard = rendezvous_shard(key, n)
                assert 0 <= shard < n
                assert shard == rendezvous_shard(key, n)

    def test_spreads_keys(self):
        hit = {rendezvous_shard(key, 4) for key in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_minimal_movement_on_resize(self):
        """Growing n -> n+1 only moves keys the new shard wins."""
        keys = list(range(300))
        before = {key: rendezvous_shard(key, 4) for key in keys}
        after = {key: rendezvous_shard(key, 5) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Every moved key must have moved *to* the new shard.
        assert all(after[key] == 4 for key in moved)
        # And roughly 1/5 of keys move (loose bound against regressions).
        assert len(moved) < len(keys) // 2

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            rendezvous_shard("key", 0)
