"""Differential suite: sharded candidate tracking == unsharded, bit for bit.

The sharding layer (:mod:`repro.streaming.sharding`) partitions each
tick's candidate-matching work by support-cluster id and executes the
per-shard batches on an executor backend; its whole contract is that
nothing observable moves.  This suite holds a sharded
:class:`~repro.streaming.StreamingConvoyMiner` equal to the unsharded
one **tick for tick** — same convoys at every single ``feed``, same
flush, same live candidate sets, same shared counters — across:

* all three clusterer pipelines (fresh DBSCAN, incremental clustering,
  incremental + cluster-diff candidate splicing);
* both ``paper_semantics`` modes;
* shard counts 1–4 and every executor backend (serial everywhere;
  thread and process on representative configurations, since their
  per-test cost is pool startup, not coverage);
* time gaps, bounded windows, turnover, hotspot-skewed churn
  (``churn_stream(hotspots=)``), and jittered feeds through a reorder
  buffer;
* sharded *ingestion*: per-shard reorder buffers merged through a
  :class:`~repro.streaming.WatermarkFrontier` feeding a sharded miner;
* *resident* mode (``resident=True``): shard state held inside
  long-lived workers fed per-tick deltas, on all three resident
  transports — including mid-run worker restarts (the generation
  re-seed path) and shard-state snapshots checked against the parent's
  authoritative view.

Counter note: keys shared with the unsharded run (``advance_steps``,
``delta_steps``, ``spliced_candidates``, ``reintersected_candidates``,
and the engine keys) must be equal; the shard keys
(``shard_steps``, ``sharded_candidates``, ``max_shard_batch``) are
extra and must actually engage, or the suite is vacuous.
"""

import pytest

from repro.streaming import WatermarkFrontier, churn_stream, jitter_ticks

SEMANTICS = (False, True)
PIPELINES = ("delta", "pr2", "full")

#: Counter keys that must agree bit-for-bit between sharded and
#: unsharded runs (everything except the shard-only bookkeeping).
SHARED_COUNTER_KEYS = (
    "snapshots",
    "clustering_calls",
    "clustered_points",
    "convoys_emitted",
    "peak_candidates",
    "advance_steps",
    "delta_steps",
    "spliced_candidates",
    "reintersected_candidates",
)


def run_lockstep_pair(ticks, base, sharded, *, require_sharding=True):
    """Feed both miners every tick; assert emissions and live state equal."""
    for t, snapshot in ticks:
        expected = base.feed(t, dict(snapshot))
        got = sharded.feed(t, dict(snapshot))
        assert got == expected, f"tick {t}: sharded diverged"
        assert sharded.live_candidates == base.live_candidates, f"tick {t}"
    assert sharded.flush() == base.flush()
    for key in SHARED_COUNTER_KEYS:
        assert sharded.counters[key] == base.counters[key], key
    if require_sharding:
        assert sharded.counters["shard_steps"] > 0
        assert sharded.counters["sharded_candidates"] > 0
    return base, sharded


class TestSerialExecutorAllPipelines:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_churn_stream(self, make_miner, pipeline, shards,
                          paper_semantics):
        ticks = list(churn_stream(80, 40, seed=61, eps=8.0, churn=0.1,
                                  turnover=0.03, area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics),
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics,
                       shards=shards, executor="serial"),
        )

    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_gaps_and_window(self, make_miner, pipeline):
        """Gap severing and prune_longer_than interact with the shard
        routing (pruned chains re-seed, supports reset across gaps)."""
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(70, 45, seed=67, eps=8.0,
                                            churn=0.08, turnover=0.02,
                                            area=96.0)
            if t % 11 != 7
        ]
        run_lockstep_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0, window=7),
            make_miner(pipeline, 3, 5, 8.0, window=7, shards=3,
                       executor="serial"),
        )

    @pytest.mark.parametrize("shards", [2, 3])
    def test_hotspot_skew(self, make_miner, shards):
        """Hotspot-concentrated churn piles the dirty candidates onto a
        few support clusters — the unbalanced-shard regime.  Emissions
        must not move, and the skew must be visible in the counters."""
        ticks = list(churn_stream(90, 40, seed=71, eps=8.0, churn=0.15,
                                  area=96.0, hotspots=2))
        base, sharded = run_lockstep_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0),
            make_miner("delta", 3, 5, 8.0, shards=shards,
                       executor="serial"),
        )
        # With the churn confined to hotspots, the delta path must still
        # splice the cold clusters' chains straight through.
        assert sharded.counters["spliced_candidates"] > 0
        assert sharded.counters["max_shard_batch"] >= 1

    def test_empty_and_below_m_ticks(self, make_miner):
        """Clusterless ticks (no jobs) must not touch the executor."""
        ticks = [
            (0, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (1, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (2, {"a": (0.0, 0.0)}),            # below m: closes chains
            (3, {}),                           # empty: still no clusters
            (4, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (5, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
        ]
        run_lockstep_pair(
            ticks,
            make_miner("full", 2, 2, 2.0),
            make_miner("full", 2, 2, 2.0, shards=2, executor="serial"),
        )


class TestPooledExecutors:
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_thread_executor(self, make_miner, pipeline):
        ticks = list(churn_stream(70, 35, seed=73, eps=8.0, churn=0.12,
                                  turnover=0.02, area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0),
            make_miner(pipeline, 3, 5, 8.0, shards=4, executor="thread"),
        )

    def test_process_executor(self, make_miner):
        """The process path pickles shard batches across the boundary;
        one full-pipeline run proves the round trip loses nothing."""
        ticks = list(churn_stream(60, 25, seed=79, eps=8.0, churn=0.12,
                                  area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0),
            make_miner("delta", 3, 5, 8.0, shards=2, executor="process"),
        )

    def test_process_executor_with_window_and_gaps(self, make_miner):
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(50, 25, seed=83, eps=8.0,
                                            churn=0.1, area=96.0)
            if t % 9 != 5
        ]
        run_lockstep_pair(
            ticks,
            make_miner("full", 3, 5, 8.0, window=6),
            make_miner("full", 3, 5, 8.0, window=6, shards=2,
                       executor="process"),
        )


class TestResidentTransports:
    """Resident mode == stateless sharded == unsharded, bit for bit.

    Resident workers hold their shard's candidate sets between ticks
    and are fed only deltas; nothing observable may move.  The serial
    resident transport runs the protocol in-process, so the full
    pipeline/semantics/shard-count matrix is cheap; thread and process
    transports get representative configurations (their cost is pool
    startup, not coverage)."""

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_resident_serial_churn(self, make_miner, pipeline, shards,
                                   paper_semantics):
        ticks = list(churn_stream(80, 40, seed=61, eps=8.0, churn=0.1,
                                  turnover=0.03, area=96.0))
        _base, resident = run_lockstep_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics),
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics,
                       shards=shards, executor="serial", resident=True),
        )
        # Every touched worker was seeded exactly once (no mid-run
        # re-seeds without a restart: deltas alone kept it current).
        inits = resident.counters["resident_inits"]
        assert 1 <= inits <= shards

    def test_resident_matches_stateless_sharded(self, make_miner):
        """Resident and stateless sharded trackers agree directly, not
        just transitively through the unsharded engine."""
        ticks = list(churn_stream(70, 35, seed=73, eps=8.0, churn=0.12,
                                  turnover=0.02, area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0, shards=3, executor="serial"),
            make_miner("delta", 3, 5, 8.0, shards=3, executor="serial",
                       resident=True),
        )

    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_resident_gaps_and_window(self, make_miner, pipeline):
        """Gap severing, pruning re-seeds, and support resets all churn
        the resident chain ids; the delta stream must track them."""
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(70, 45, seed=67, eps=8.0,
                                            churn=0.08, turnover=0.02,
                                            area=96.0)
            if t % 11 != 7
        ]
        run_lockstep_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0, window=7),
            make_miner(pipeline, 3, 5, 8.0, window=7, shards=3,
                       executor="serial", resident=True),
        )

    def test_resident_thread(self, make_miner):
        ticks = list(churn_stream(70, 35, seed=73, eps=8.0, churn=0.12,
                                  turnover=0.02, area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0),
            make_miner("delta", 3, 5, 8.0, shards=4, executor="thread",
                       resident=True),
        )

    def test_resident_process(self, make_miner):
        """Long-lived spawned workers fed deltas across the pickle
        boundary, with the vector kernel resolved from its name inside
        the workers: the round trip loses nothing."""
        ticks = list(churn_stream(60, 25, seed=79, eps=8.0, churn=0.12,
                                  area=96.0))
        run_lockstep_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0, backend="vector"),
            make_miner("delta", 3, 5, 8.0, backend="vector", shards=2,
                       executor="process", resident=True),
        )

    def test_resident_jittered_reorder(self, make_miner, fuzz_workload):
        base_ticks, feed, lateness = fuzz_workload(2)
        plain = make_miner("delta", 3, 5, 8.0)
        expected = []
        for t, snapshot in base_ticks:
            expected.extend(plain.feed(t, dict(snapshot)))
        expected.extend(plain.flush())
        resident = make_miner(
            "delta", 3, 5, 8.0, reorder=dict(allowed_lateness=lateness),
            shards=3, executor="serial", resident=True,
        )
        got = []
        for t, snapshot in feed:
            got.extend(resident.feed(t, snapshot))
        got.extend(resident.flush())
        assert got == expected

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_mid_run_restart_recovers(self, make_miner, executor):
        """Killing a resident worker mid-run must only cost a re-seed:
        the generation bump triggers a full init from the parent's
        authoritative state and the run stays bit-for-bit equal."""
        ticks = list(churn_stream(60, 30, seed=91, eps=8.0, churn=0.12,
                                  turnover=0.02, area=96.0))
        base = make_miner("delta", 3, 5, 8.0)
        resident = make_miner("delta", 3, 5, 8.0, shards=2,
                              executor=executor, resident=True)
        tracker = resident.pipeline.track.tracker
        with base, resident:
            for t, snapshot in ticks:
                if t in (10, 20):
                    tracker.executor.restart(t % tracker.shards)
                expected = base.feed(t, dict(snapshot))
                assert resident.feed(t, dict(snapshot)) == expected
            assert resident.flush() == base.flush()
        # Initial seeds plus one re-seed per restarted shard.
        assert resident.counters["resident_inits"] >= 3

    def test_shard_snapshot_matches_parent_view(self, make_miner):
        """Mid-run and at the end, draining a shard's resident state
        returns exactly the parent's authoritative {chain: objects}
        view — the rebalancer's read side."""
        ticks = list(churn_stream(60, 24, seed=95, eps=8.0, churn=0.12,
                                  area=96.0))
        resident = make_miner("delta", 3, 5, 8.0, shards=3,
                              executor="serial", resident=True)
        tracker = resident.pipeline.track.tracker
        checked = 0
        with resident:
            for t, snapshot in ticks:
                resident.feed(t, dict(snapshot))
                if t % 6 == 5:
                    for shard in range(tracker.shards):
                        assert (tracker.snapshot_shard(shard)
                                == tracker.expected_shard_state(shard))
                        checked += 1
        assert checked > 0


class TestJitteredFeeds:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_reorder_buffer_in_front_of_sharded_tracker(self, make_miner,
                                                        fuzz_workload,
                                                        seed,
                                                        paper_semantics):
        """Out-of-order arrivals through the watermark buffer, then the
        sharded tracker: still bit-for-bit the plain in-order run."""
        base_ticks, feed, lateness = fuzz_workload(seed)
        plain = make_miner("delta", 3, 5, 8.0,
                           paper_semantics=paper_semantics)
        expected = []
        for t, snapshot in base_ticks:
            expected.extend(plain.feed(t, dict(snapshot)))
        expected.extend(plain.flush())

        sharded = make_miner(
            "delta", 3, 5, 8.0, paper_semantics=paper_semantics,
            reorder=dict(allowed_lateness=lateness), shards=3,
            executor="serial",
        )
        got = []
        for t, snapshot in feed:
            got.extend(sharded.feed(t, snapshot))
        got.extend(sharded.flush())
        assert got == expected
        assert sharded.counters["sharded_candidates"] > 0


class TestShardedIngestionFrontier:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_partitioned_jittered_ingestion_matches_in_order(self,
                                                             make_miner,
                                                             n_shards):
        """Sharded ingestion end to end: objects partitioned across
        per-shard reorder buffers, each shard's feed independently
        jittered, merged through the WatermarkFrontier into a sharded
        miner — still the exact in-order unsharded answer."""
        base_ticks = list(churn_stream(45, 30, seed=89, eps=8.0,
                                       churn=0.1, area=96.0))
        plain = make_miner("full", 3, 5, 8.0)
        expected = []
        for t, snapshot in base_ticks:
            expected.extend(plain.feed(t, dict(snapshot)))
        expected.extend(plain.flush())

        shard_of = {
            o: i % n_shards for i, o in enumerate(base_ticks[0][1])
        }
        jitter = 3
        shard_feeds = []
        for shard in range(n_shards):
            # Every shard reports every tick (its piece may be empty —
            # the heartbeat that keeps the merged frontier moving), and
            # each shard's arrival order is independently shuffled.
            part = [
                (t, {o: xy for o, xy in snapshot.items()
                     if shard_of.get(o, shard % n_shards) == shard})
                for t, snapshot in base_ticks
            ]
            shard_feeds.append(list(jitter_ticks(part, jitter,
                                                 seed=100 + shard)))

        frontier = WatermarkFrontier(n_shards, allowed_lateness=jitter)
        miner = make_miner("full", 3, 5, 8.0, shards=n_shards,
                           executor="serial")
        got = []
        # Interleave the shard feeds round-robin, as concurrent uplinks
        # would; the frontier restores one global in-order stream.
        for arrivals in zip(*shard_feeds):
            for shard, (t, snapshot) in enumerate(arrivals):
                for rt, rs in frontier.push(shard, t, snapshot):
                    got.extend(miner.feed(rt, rs))
        for rt, rs in frontier.drain():
            got.extend(miner.feed(rt, rs))
        got.extend(miner.flush())
        assert got == expected
