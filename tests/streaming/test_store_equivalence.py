"""Differential suite: mining with a write-through store changes nothing,
and the store's read-back is bit-for-bit the in-memory answer.

Two properties, held jointly across all three clusterer pipelines, both
candidate semantics, sharded/resident trackers, gap-severed streams, and
bounded windows:

* **transparency** — a miner with ``store=`` emits, tick for tick,
  exactly what the plain miner emits (the sink observes the stream but
  never touches it);
* **fidelity** — after the run, the store answers with the mined list
  itself: ``all_convoys()`` is the canonical sort of the emissions
  (object-id types included), every ``alive_in`` window equals the
  brute-force filter *and* its own forced full scan, and ``top_k``
  streams the exact :func:`~repro.store.base.rank_key` order.

The workloads deliberately include whole-tick gaps (chain severing) so
replayed identity collisions and bbox position-log pruning both engage.
"""

import pytest

from repro.store import SQLiteConvoyStore, convoy_identity, rank_key
from repro.streaming import churn_stream

SEMANTICS = (False, True)
PIPELINES = ("delta", "pr2", "full")


def gap_workload(n_objects=50, n_snapshots=36, seed=29):
    """A churning stream with whole-tick gaps (severs candidate chains)."""
    ticks = list(churn_stream(n_objects, n_snapshots, seed=seed, eps=8.0,
                              churn=0.12, turnover=0.05, area=96.0))
    return [tick for i, tick in enumerate(ticks) if i % 9 != 7]


def run_lockstep_with_store(ticks, plain, stored):
    """Feed both miners every tick; emissions must never diverge."""
    emitted = []
    for t, snapshot in ticks:
        expected = plain.feed(t, dict(snapshot))
        got = stored.feed(t, dict(snapshot))
        assert got == expected, f"tick {t}: stored-run miner diverged"
        emitted.extend(expected)
    flushed = plain.flush()
    assert stored.flush() == flushed
    emitted.extend(flushed)
    return emitted


def assert_store_readback(store, emitted):
    """The fidelity half: every query answers from the mined list."""
    identities = {convoy_identity(c) for c in emitted}
    assert store.count() == len(identities)
    expected_all = sorted(
        {convoy_identity(c): c for c in emitted}.values(),
        key=lambda c: (c.t_start, c.t_end, convoy_identity(c)),
    )
    read_back = store.all_convoys()
    assert read_back == expected_all
    # Bit for bit includes the member-id types.
    assert [sorted(map(repr, c.objects)) for c in read_back] == \
        [sorted(map(repr, c.objects)) for c in expected_all]
    if emitted:
        lo = min(c.t_start for c in emitted)
        hi = max(c.t_end for c in emitted)
        windows = [(lo, hi), (lo, lo), (hi, hi),
                   ((lo + hi) // 2, (lo + hi) // 2 + 3), (hi + 1, hi + 5)]
    else:
        windows = [(0, 10)]
    for t1, t2 in windows:
        expected = [c for c in expected_all
                    if c.t_start <= t2 and c.t_end >= t1]
        assert store.alive_in(t1, t2) == expected
        assert store.alive_in(t1, t2, force_scan=True) == expected
        for by in ("size", "duration"):
            ranked = sorted(expected, key=lambda c: rank_key(c, by))
            assert list(store.top_k(by=by, alive=(t1, t2))) == ranked
            k = max(1, len(ranked) // 2)
            assert list(store.top_k(by=by, k=k, alive=(t1, t2))) == \
                ranked[:k]
    for by in ("size", "duration"):
        assert list(store.top_k(by=by)) == sorted(
            expected_all, key=lambda c: rank_key(c, by)
        )
    # Every stored convoy carries a bounding box (the sink observed the
    # whole stream), or the suite is not testing the bbox path at all.
    assert all(store.bbox_of(c) is not None for c in expected_all)


def run_differential(make_miner, tmp_path, pipeline, ticks, **kwargs):
    plain = make_miner(pipeline, 3, 4, 8.0, **kwargs)
    store = SQLiteConvoyStore(tmp_path / "convoys.db")
    stored = make_miner(pipeline, 3, 4, 8.0, store=store, **kwargs)
    with store, plain, stored:
        emitted = run_lockstep_with_store(ticks, plain, stored)
        assert emitted, "vacuous workload: nothing was mined"
        assert_store_readback(store, emitted)
    return emitted


class TestAllPipelinesBothSemantics:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_gap_workload(self, make_miner, tmp_path, pipeline,
                          paper_semantics):
        run_differential(make_miner, tmp_path, pipeline, gap_workload(),
                         paper_semantics=paper_semantics)


class TestBoundedWindow:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_windowed_miner(self, make_miner, tmp_path, paper_semantics):
        run_differential(make_miner, tmp_path, "full", gap_workload(),
                         window=12, paper_semantics=paper_semantics)


class TestShardedAndResident:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_sharded_serial(self, make_miner, tmp_path, paper_semantics):
        run_differential(make_miner, tmp_path, "full", gap_workload(),
                         shards=3, paper_semantics=paper_semantics)

    def test_resident_thread_executor(self, make_miner, tmp_path):
        run_differential(make_miner, tmp_path, "full", gap_workload(),
                         shards=2, executor="thread", resident=True)


class TestRestartResumesWithoutDuplicates:
    def test_rerun_replays_idempotently(self, make_miner, tmp_path):
        ticks = gap_workload()
        store = SQLiteConvoyStore(tmp_path / "convoys.db")
        with store:
            first = make_miner("full", 3, 4, 8.0, store=store)
            with first:
                for t, snapshot in ticks:
                    first.feed(t, dict(snapshot))
                first.flush()
            rows = store.all_convoys()
            assert rows
            assert first.counters["stored_convoys"] == len(rows)
            second = make_miner("full", 3, 4, 8.0, store=store)
            with second:
                for t, snapshot in ticks:
                    second.feed(t, dict(snapshot))
                second.flush()
            assert second.counters["stored_convoys"] == 0
            assert second.counters["replayed_convoys"] == len(rows)
            assert store.all_convoys() == rows
