"""Unit tests for the watermarked reorder buffer and its engine wiring."""

import pytest

from repro.core.convoy import Convoy
from repro.streaming import (
    ReorderBuffer,
    StreamingConvoyMiner,
    WatermarkFrontier,
    jitter_ticks,
    mine_stream,
    reorder_ticks,
    synthetic_stream,
)


def pair_snapshot(t, apart=1.0):
    """Two objects travelling east together."""
    return {"a": (float(t), 0.0), "b": (float(t), apart)}


class TestValidation:
    def test_needs_a_release_trigger(self):
        with pytest.raises(ValueError, match="release trigger"):
            ReorderBuffer()

    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            ReorderBuffer(allowed_lateness=-1)

    def test_rejects_nonpositive_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            ReorderBuffer(max_pending=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="late_policy"):
            ReorderBuffer(allowed_lateness=1, late_policy="ignore")

    def test_rejects_amend_without_lateness_horizon(self):
        """A capacity-only buffer has no amend horizon; accepting the
        combination would silently degrade every amend to a drop."""
        with pytest.raises(ValueError, match="amend.*allowed_lateness"):
            ReorderBuffer(max_pending=10, late_policy="amend")
        ReorderBuffer(allowed_lateness=0, late_policy="amend")  # legal

    def test_miner_rejects_bad_reorder_argument(self):
        with pytest.raises(ValueError, match="reorder"):
            StreamingConvoyMiner(2, 3, 1.0, reorder="yes please")


class TestWatermarkRelease:
    def test_zero_lateness_passes_in_order_feed_through(self):
        buffer = ReorderBuffer(allowed_lateness=0)
        for t in range(5):
            assert buffer.push(t, {"a": (t, 0)}) == [(t, {"a": (t, 0)})]
        assert len(buffer) == 0

    def test_holds_until_watermark_passes(self):
        buffer = ReorderBuffer(allowed_lateness=3)
        assert buffer.push(0, {"a": (0, 0)}) == []
        assert buffer.push(1, {"a": (1, 0)}) == []
        assert buffer.push(2, {"a": (2, 0)}) == []
        # max_seen=3 -> watermark 0: exactly t=0 is released.
        assert buffer.push(3, {"a": (3, 0)}) == [(0, {"a": (0, 0)})]
        assert buffer.last_released == 0
        assert len(buffer) == 3

    def test_out_of_order_arrivals_release_in_time_order(self):
        buffer = ReorderBuffer(allowed_lateness=2)
        released = []
        for t in (2, 0, 1, 4):
            released.extend(buffer.push(t, {"a": (t, 0)}))
        assert [t for t, _ in released] == [0, 1, 2]
        released.extend(buffer.drain())
        assert [t for t, _ in released] == [0, 1, 2, 4]

    def test_below_watermark_but_placeable_arrival_is_not_late(self):
        """An arrival between the last release and the watermark can still
        be slotted in order: it is released immediately, not rejected."""
        buffer = ReorderBuffer(allowed_lateness=2)
        buffer.push(0, {"a": (0, 0)})
        buffer.push(6, {"a": (6, 0)})  # releases t=0; watermark now 4
        assert buffer.last_released == 0
        assert buffer.push(2, {"b": (2, 0)}) == [(2, {"b": (2, 0)})]

    def test_watermark_property(self):
        buffer = ReorderBuffer(allowed_lateness=5)
        assert buffer.watermark == float("-inf")
        buffer.push(7, {})
        assert buffer.watermark == 2
        capacity_only = ReorderBuffer(max_pending=4)
        capacity_only.push(7, {})
        assert capacity_only.watermark == float("-inf")


class TestMaxPending:
    def test_capacity_evicts_oldest_first(self):
        buffer = ReorderBuffer(max_pending=2)
        assert buffer.push(5, {}) == []
        assert buffer.push(3, {}) == []
        assert buffer.push(9, {}) == [(3, {})]
        assert len(buffer) == 2

    def test_capacity_combines_with_watermark(self):
        buffer = ReorderBuffer(allowed_lateness=100, max_pending=3)
        for t in (4, 2, 8, 6):
            released = buffer.push(t, {})
        assert [t for t, _ in released] == [2]


class TestDuplicateMerge:
    def test_split_report_reassembles(self):
        buffer = ReorderBuffer(allowed_lateness=2)
        buffer.push(0, {"a": (0.0, 0.0)})
        buffer.push(0, {"b": (1.0, 1.0)})
        [(t, snapshot)] = buffer.push(3, {"a": (3.0, 0.0)})
        assert t == 0
        assert snapshot == {"a": (0.0, 0.0), "b": (1.0, 1.0)}
        assert buffer.counters["merged_snapshots"] == 1

    def test_later_fix_wins_per_object(self):
        buffer = ReorderBuffer(allowed_lateness=2)
        buffer.push(0, {"a": (0.0, 0.0), "b": (9.0, 9.0)})
        buffer.push(0, {"a": (5.0, 5.0)})
        [(_t, snapshot)] = buffer.drain()
        assert snapshot["a"] == (5.0, 5.0)
        assert snapshot["b"] == (9.0, 9.0)


class TestLatePolicies:
    def make_released(self, policy, lateness=2):
        """A buffer whose t=0..1 slots are already released."""
        buffer = ReorderBuffer(allowed_lateness=lateness, late_policy=policy)
        buffer.push(0, {"a": (0, 0)})
        buffer.push(1, {"a": (1, 0)})
        buffer.push(1 + lateness, {"a": (3, 0)})  # releases 0 and 1
        assert buffer.last_released == 1
        return buffer

    def test_raise_names_timestamps_and_watermark(self):
        buffer = self.make_released("raise")
        with pytest.raises(ValueError, match=r"t=0.*t=1.*watermark"):
            buffer.push(0, {"z": (0, 0)})

    def test_drop_counts_and_discards(self):
        buffer = self.make_released("drop")
        assert buffer.push(0, {"z": (0, 0)}) == []
        assert buffer.counters["late_dropped"] == 1
        # The dropped object never surfaces.
        drained = buffer.drain()
        assert all("z" not in snapshot for _t, snapshot in drained)

    def test_amend_folds_into_earliest_pending(self):
        buffer = self.make_released("amend", lateness=3)
        # last_released=1; t=1 is 0 < lateness behind -> amendable.
        assert buffer.push(1, {"z": (7.0, 7.0)}) == []
        assert buffer.counters["late_amended"] == 1
        (t, snapshot), *_rest = buffer.drain()
        assert "z" in snapshot and snapshot["z"] == (7.0, 7.0)

    def test_amend_never_overrides_fresher_fix(self):
        buffer = self.make_released("amend", lateness=3)
        # "a" already has a reading in the pending snapshot; the stale
        # late fix must not replace it.
        buffer.push(1, {"a": (99.0, 99.0)})
        drained = buffer.drain()
        assert all(
            snapshot.get("a") != (99.0, 99.0) for _t, snapshot in drained
        )
        assert buffer.counters["late_amended"] == 1

    def test_amend_beyond_horizon_drops(self):
        buffer = ReorderBuffer(allowed_lateness=2, late_policy="amend")
        buffer.push(0, {"a": (0, 0)})
        buffer.push(10, {"a": (10, 0)})  # releases t=0; last_released=0
        # t=-5 is 5 >= lateness behind the last release: dropped.
        assert buffer.push(-5, {"z": (0, 0)}) == []
        assert buffer.counters["late_dropped"] == 1
        assert buffer.counters["late_amended"] == 0

    def test_amend_with_nothing_pending_drops(self):
        buffer = ReorderBuffer(allowed_lateness=0, late_policy="amend")
        buffer.push(5, {"a": (5, 0)})  # released immediately
        assert len(buffer) == 0
        assert buffer.push(5, {"z": (0, 0)}) == []
        assert buffer.counters["late_dropped"] == 1


class TestCounters:
    def test_reordered_and_peak_pending(self):
        counters = {}
        buffer = ReorderBuffer(allowed_lateness=10, counters=counters)
        buffer.push(3, {})
        buffer.push(1, {})   # behind max_seen: reordered
        buffer.push(2, {})   # behind max_seen: reordered
        buffer.push(4, {})   # new maximum: not reordered
        assert counters["reordered_snapshots"] == 2
        assert counters["peak_pending"] == 4
        buffer.drain()
        assert counters["peak_pending"] == 4  # peak, not current

    def test_fresh_counter_dict_when_omitted(self):
        buffer = ReorderBuffer(allowed_lateness=1)
        assert set(buffer.counters) >= {
            "reordered_snapshots", "merged_snapshots", "late_dropped",
            "late_amended", "peak_pending",
        }


class TestReorderTicks:
    def test_restores_exactly_the_sorted_stream(self):
        base = list(synthetic_stream(20, 40, seed=9, eps=8.0))
        jittered = list(jitter_ticks(base, 5, seed=17))
        assert jittered != base
        assert list(reorder_ticks(jittered, allowed_lateness=5)) == base

    def test_drains_the_tail(self):
        ticks = [(0, {"a": (0, 0)}), (1, {"a": (1, 0)})]
        assert list(reorder_ticks(ticks, allowed_lateness=50)) == ticks


class TestMinerIntegration:
    def test_accepts_buffer_instance_and_kwargs_dict(self):
        instance = ReorderBuffer(allowed_lateness=2)
        miner = StreamingConvoyMiner(2, 3, 2.0, reorder=instance)
        assert miner.reorder is instance
        miner = StreamingConvoyMiner(2, 3, 2.0,
                                     reorder=dict(allowed_lateness=2))
        assert isinstance(miner.reorder, ReorderBuffer)
        # The dict form shares the miner's counters dict.
        assert "reordered_snapshots" in miner.counters

    def test_shuffled_feed_equals_in_order_answer(self):
        plain = StreamingConvoyMiner(2, 3, 2.0)
        buffered = StreamingConvoyMiner(2, 3, 2.0,
                                        reorder=dict(allowed_lateness=4))
        order = [2, 0, 1, 4, 3, 6, 5, 7]
        emitted = []
        for t in range(8):
            plain.feed(t, pair_snapshot(t))
        for t in order:
            emitted.extend(buffered.feed(t, pair_snapshot(t)))
        assert emitted + buffered.flush() == plain.flush()

    def test_flush_drains_pending_reorder_buffer(self):
        """Regression (end-of-stream drain ordering): snapshots still
        sitting in the buffer at flush() must be ingested, in time order,
        before chains close — identical to feeding them in order first."""
        plain = StreamingConvoyMiner(2, 4, 2.0)
        for t in range(6):
            plain.feed(t, pair_snapshot(t))
        expected = plain.flush()
        assert expected == [Convoy({"a", "b"}, 0, 5)]

        buffered = StreamingConvoyMiner(2, 4, 2.0,
                                        reorder=dict(allowed_lateness=50))
        emitted = []
        for t in (3, 0, 5, 1, 4, 2):  # nothing ever passes the watermark
            emitted.extend(buffered.feed(t, pair_snapshot(t)))
        assert emitted == []
        assert len(buffered.reorder) == 6
        assert buffered.flush() == expected
        assert len(buffered.reorder) == 0
        assert buffered.counters["snapshots"] == 6

    def test_flush_drain_closes_gap_separated_chains(self):
        """Draining must preserve gap semantics: a hole in the buffered
        timestamps still severs chains during the drain."""
        buffered = StreamingConvoyMiner(2, 2, 2.0,
                                        reorder=dict(allowed_lateness=50))
        for t in (5, 1, 0, 6):  # gap between 1 and 5
            buffered.feed(t, pair_snapshot(t))
        assert buffered.flush() == [
            Convoy({"a", "b"}, 0, 1), Convoy({"a", "b"}, 5, 6),
        ]

    def test_feed_after_flush_still_raises(self):
        miner = StreamingConvoyMiner(2, 3, 2.0,
                                     reorder=dict(allowed_lateness=2))
        miner.feed(0, pair_snapshot(0))
        miner.flush()
        with pytest.raises(RuntimeError):
            miner.feed(1, pair_snapshot(1))

    def test_flush_is_idempotent_with_reorder(self):
        miner = StreamingConvoyMiner(2, 3, 2.0,
                                     reorder=dict(allowed_lateness=50))
        for t in range(5):
            miner.feed(t, pair_snapshot(t))
        assert miner.flush() == [Convoy({"a", "b"}, 0, 4)]
        assert miner.flush() == []

    def test_late_raise_propagates_from_feed(self):
        miner = StreamingConvoyMiner(2, 3, 2.0,
                                     reorder=dict(allowed_lateness=0))
        miner.feed(5, pair_snapshot(5))
        with pytest.raises(ValueError, match="late snapshot"):
            miner.feed(4, pair_snapshot(4))

    def test_mine_stream_forwards_reorder(self):
        base = list(synthetic_stream(30, 40, seed=4, eps=8.0))
        jittered = list(jitter_ticks(base, 4, seed=23))
        expected = mine_stream(iter(base), 3, 5, 8.0)
        got = mine_stream(iter(jittered), 3, 5, 8.0,
                          reorder=dict(allowed_lateness=4))
        assert got == expected


class TestReleaseAll:
    """The idle-drain seam: a capacity-only buffer on a quiescent feed
    stalls its tail forever (only arrivals force releases), so
    ``release_all`` must push it through without ending the stream."""

    def test_capacity_only_buffer_stalls_without_arrivals(self):
        """The bug scenario pinned: fewer than max_pending snapshots sit
        buffered indefinitely — no watermark will ever release them."""
        buffer = ReorderBuffer(max_pending=10)
        for t in range(4):
            assert buffer.push(t, pair_snapshot(t)) == []
        assert len(buffer) == 4  # stalled: nothing will ever release these

    def test_release_all_frees_the_stalled_tail_in_order(self):
        buffer = ReorderBuffer(max_pending=10)
        for t in (2, 0, 3, 1):
            buffer.push(t, pair_snapshot(t))
        released = buffer.release_all()
        assert [t for t, _ in released] == [0, 1, 2, 3]
        assert len(buffer) == 0

    def test_buffer_stays_usable_after_release_all(self):
        buffer = ReorderBuffer(max_pending=3)
        buffer.push(0, pair_snapshot(0))
        buffer.release_all()
        assert buffer.push(5, pair_snapshot(5)) == []
        assert len(buffer) == 1
        assert [t for t, _ in buffer.release_all()] == [5]

    def test_released_timestamps_are_closed(self):
        """Arrivals at or below a released timestamp fall to the late
        policy, exactly as after a watermark release."""
        buffer = ReorderBuffer(max_pending=5, late_policy="drop")
        buffer.push(3, pair_snapshot(3))
        buffer.release_all()
        assert buffer.push(2, pair_snapshot(2)) == []
        assert buffer.counters["late_dropped"] == 1

    def test_empty_release_all_is_a_noop(self):
        buffer = ReorderBuffer(max_pending=2)
        assert buffer.release_all() == []

    def test_drain_and_release_all_agree(self):
        a = ReorderBuffer(max_pending=10)
        b = ReorderBuffer(max_pending=10)
        for t in (4, 1, 3):
            a.push(t, pair_snapshot(t))
            b.push(t, pair_snapshot(t))
        assert a.drain() == b.release_all()

    def test_miner_release_pending_mines_the_stalled_tail(self):
        """The miner-level seam: release_pending ingests the buffered
        tail mid-stream — same emissions as an in-order feed — and the
        miner stays live for further feeds."""
        plain = StreamingConvoyMiner(2, 3, 2.0)
        emitted_plain = []
        for t in range(6):
            emitted_plain.extend(plain.feed(t, pair_snapshot(t)))

        buffered = StreamingConvoyMiner(2, 3, 2.0,
                                        reorder=dict(max_pending=50))
        emitted = []
        for t in range(6):
            emitted.extend(buffered.feed(t, pair_snapshot(t)))
        assert emitted == []  # capacity never reached: everything stalled
        assert buffered.last_time is None
        emitted.extend(buffered.release_pending())
        assert buffered.last_time == 5
        assert emitted == emitted_plain
        # Still live: the released timestamps are closed, later times feed.
        emitted_plain.extend(plain.feed(6, pair_snapshot(6)))
        emitted.extend(buffered.feed(6, pair_snapshot(6)))
        assert emitted == emitted_plain
        assert buffered.flush() == plain.flush() == [Convoy({"a", "b"}, 0, 6)]

    def test_miner_release_pending_without_buffer_is_noop(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        miner.feed(0, pair_snapshot(0))
        assert miner.release_pending() == []
        assert miner.last_time == 0

    def test_miner_release_pending_after_flush_raises(self):
        miner = StreamingConvoyMiner(2, 3, 2.0,
                                     reorder=dict(max_pending=5))
        miner.flush()
        with pytest.raises(RuntimeError, match="already flushed"):
            miner.release_pending()


class TestJitterTicks:
    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            list(jitter_ticks([], -1))

    def test_zero_jitter_is_identity(self):
        base = list(synthetic_stream(10, 20, seed=1, eps=8.0))
        assert list(jitter_ticks(iter(base), 0, seed=99)) == base

    @pytest.mark.parametrize("jitter", [2, 3, 7])
    def test_permutation_within_lateness_bound(self, jitter):
        base = list(synthetic_stream(15, 60, seed=6, eps=8.0))
        shuffled = list(jitter_ticks(base, jitter, seed=8))
        assert sorted(shuffled, key=lambda tick: tick[0]) == base
        max_seen = None
        for t, _snapshot in shuffled:
            if max_seen is not None:
                assert max_seen - t < jitter
            max_seen = t if max_seen is None else max(max_seen, t)

    def test_deterministic_per_seed(self):
        base = list(synthetic_stream(12, 30, seed=2, eps=8.0))
        assert (list(jitter_ticks(base, 4, seed=5))
                == list(jitter_ticks(base, 4, seed=5)))
        assert (list(jitter_ticks(base, 4, seed=5))
                != list(jitter_ticks(base, 4, seed=6)))


class TestWatermarkFrontier:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="shards"):
            WatermarkFrontier(0, allowed_lateness=2)

    def test_needs_a_release_trigger_named_for_the_frontier(self):
        with pytest.raises(ValueError, match="WatermarkFrontier"):
            WatermarkFrontier(2)

    def test_single_shard_matches_a_plain_buffer(self):
        ticks = [(2, pair_snapshot(2)), (0, pair_snapshot(0)),
                 (1, pair_snapshot(1)), (4, pair_snapshot(4)),
                 (3, pair_snapshot(3))]
        buffer = ReorderBuffer(allowed_lateness=2)
        frontier = WatermarkFrontier(1, allowed_lateness=2)
        direct, merged = [], []
        for t, snapshot in ticks:
            direct.extend(buffer.push(t, snapshot))
            merged.extend(frontier.push(0, t, snapshot))
        direct.extend(buffer.drain())
        merged.extend(frontier.drain())
        assert merged == direct

    def test_emissions_wait_for_the_slowest_shard(self):
        """A tick stays staged until every shard's releases pass it."""
        frontier = WatermarkFrontier(2, allowed_lateness=0)
        assert frontier.push(0, 0, {"a": (0.0, 0.0)}) == []
        assert frontier.push(0, 1, {"a": (1.0, 0.0)}) == []
        assert frontier.frontier is None  # shard 1 has released nothing
        # Shard 1 catching up to t=0 releases exactly the merged t=0.
        released = frontier.push(1, 0, {"b": (0.0, 1.0)})
        assert released == [(0, {"a": (0.0, 0.0), "b": (0.0, 1.0)})]
        assert frontier.frontier == 0
        assert frontier.last_emitted == 0

    def test_pieces_of_one_tick_merge_across_shards(self):
        frontier = WatermarkFrontier(2, allowed_lateness=0)
        out = []
        out.extend(frontier.push(0, 0, {"a": (0.0, 0.0)}))
        out.extend(frontier.push(1, 0, {"b": (1.0, 1.0)}))
        out.extend(frontier.push(0, 1, {"a": (2.0, 0.0)}))
        out.extend(frontier.push(1, 1, {"b": (3.0, 1.0)}))
        assert out == [(0, {"a": (0.0, 0.0), "b": (1.0, 1.0)}),
                       (1, {"a": (2.0, 0.0), "b": (3.0, 1.0)})]

    def test_global_emissions_strictly_increase(self):
        """Per-shard jitter within lateness never reorders the merge."""
        import random

        rng = random.Random(17)
        base = list(synthetic_stream(8, 40, seed=3, eps=8.0))
        feeds = [list(jitter_ticks(base, 4, seed=s)) for s in (1, 2, 3)]
        frontier = WatermarkFrontier(3, allowed_lateness=4)
        emitted = []
        order = [(s, i) for s in range(3) for i in range(len(base))]
        # Interleave shards without violating each shard's own order.
        cursors = [0, 0, 0]
        while any(c < len(base) for c in cursors):
            shard = rng.choice([s for s in range(3)
                                if cursors[s] < len(base)])
            t, snapshot = feeds[shard][cursors[shard]]
            cursors[shard] += 1
            emitted.extend(frontier.push(shard, t, snapshot))
        emitted.extend(frontier.drain())
        assert [t for t, _s in emitted] == [t for t, _s in base]
        assert len(order) == 3 * len(base)  # sanity on the interleave

    def test_idle_shard_holds_releases_until_drain(self):
        frontier = WatermarkFrontier(2, allowed_lateness=0)
        for t in range(5):
            assert frontier.push(0, t, pair_snapshot(t)) == []
        assert len(frontier) == 5
        drained = frontier.drain()
        assert [t for t, _s in drained] == [0, 1, 2, 3, 4]
        assert len(frontier) == 0

    def test_shared_counters_and_staged_peak(self):
        counters = {}
        frontier = WatermarkFrontier(2, allowed_lateness=2,
                                     counters=counters)
        for t in (1, 0, 3, 2):
            frontier.push(0, t, pair_snapshot(t))
        for t in range(4):
            frontier.push(1, t, {"c": (float(t), 5.0)})
        frontier.drain()
        assert counters["reordered_snapshots"] > 0
        assert counters["frontier_staged_peak"] > 0
        assert counters is frontier.counters

    def test_merged_watermark_is_the_minimum(self):
        frontier = WatermarkFrontier(2, allowed_lateness=1)
        frontier.push(0, 10, pair_snapshot(10))
        assert frontier.watermark == -float("inf")  # shard 1 unseen
        frontier.push(1, 4, pair_snapshot(4))
        assert frontier.watermark == 3  # min(10, 4) - 1
