"""Lifecycle tests for the sharded tracker and its executors.

Three regressions are pinned here:

* **Pool leaks** — a :class:`StreamingConvoyMiner` whose tracker holds
  an executor pool must release it on *every* exit path: normal
  ``flush``, and — via the miner's context-manager protocol — a stream
  that dies mid-run (the original leak: an exception between ``feed``
  calls orphaned the worker processes until interpreter exit).
* **Resident worker crashes** — a resident shard worker killed mid-run
  must surface as the named :class:`ShardWorkerCrashed` (never a hang
  or a silent wrong answer), after which ``close()`` still succeeds and
  a fresh run computes the baseline answer.
* **Route-cache eviction** — the support-routing cache's overflow sweep
  must evict only routes no live candidate uses (the original bug
  cleared the whole cache, forcing a rendezvous recompute burst for the
  entire live set on the next tick) and count itself in
  ``route_cache_resets``.
"""

import os
import signal

import pytest

from repro.clustering.incremental import APPEARED, CHANGED, ClusterDelta
from repro.streaming import ShardWorkerCrashed, StreamingConvoyMiner
from repro.streaming.sharding import ShardedCandidateTracker, rendezvous_shard
from repro.streaming.source import churn_stream


def _ticks(n_objects=40, n_snapshots=10, seed=5):
    return list(churn_stream(n_objects, n_snapshots, seed=seed, eps=8.0,
                             churn=0.1, area=64.0))


def _mine(miner, ticks):
    out = []
    with miner:
        for t, snapshot in ticks:
            out.extend(miner.feed(t, dict(snapshot)))
        out.extend(miner.flush())
    return out


class TestMinerReleasesExecutors:
    def test_flush_closes_the_process_pool(self):
        miner = StreamingConvoyMiner(3, 5, 8.0, shards=2,
                                     executor="process")
        backend = miner.pipeline.track.tracker.executor
        for t, snapshot in _ticks():
            miner.feed(t, snapshot)
        assert backend.alive
        miner.flush()
        assert not backend.alive

    @pytest.mark.parametrize("resident", [False, True])
    def test_context_manager_closes_on_stream_error(self, resident):
        """The pool-leak regression: a stream dying between feeds must
        not orphan worker processes — ``with miner:`` reaches the
        tracker's ``close()`` on the error path."""
        executor = "process" if not resident else "serial"
        miner = StreamingConvoyMiner(3, 5, 8.0, shards=2,
                                     executor=executor, resident=resident)
        backend = miner.pipeline.track.tracker.executor
        ticks = _ticks()
        with pytest.raises(RuntimeError, match="stream source died"):
            with miner:
                for t, snapshot in ticks:
                    miner.feed(t, snapshot)
                assert backend.alive
                raise RuntimeError("stream source died")
        assert not backend.alive

    def test_close_is_idempotent(self):
        miner = StreamingConvoyMiner(3, 5, 8.0, shards=2,
                                     executor="serial")
        for t, snapshot in _ticks(n_snapshots=4):
            miner.feed(t, snapshot)
        miner.close()
        miner.close()


class TestResidentWorkerCrash:
    def test_crash_is_named_close_succeeds_and_a_rerun_matches(self):
        ticks = _ticks(n_snapshots=12)
        expected = _mine(StreamingConvoyMiner(3, 5, 8.0), ticks)

        miner = StreamingConvoyMiner(3, 5, 8.0, shards=2,
                                     executor="process", resident=True)
        backend = miner.pipeline.track.tracker.executor
        with pytest.raises(ShardWorkerCrashed,
                           match="resident worker for shard"):
            with miner:
                for t, snapshot in ticks:
                    if t == 6:
                        pid = backend.probe(0)[0]
                        os.kill(pid, signal.SIGKILL)
                    miner.feed(t, dict(snapshot))
        # The context manager already closed the miner on the way out;
        # closing again is still safe, and no pool survived.
        miner.close()
        assert not backend.alive
        # The crash poisoned nothing durable: a fresh resident run
        # produces the baseline answer.
        fresh = StreamingConvoyMiner(3, 5, 8.0, shards=2,
                                     executor="process", resident=True)
        assert _mine(fresh, ticks) == expected


class TestRouteCacheEviction:
    def _tracker_with_live_routes(self, shards=3):
        """A tracker whose four live candidates have cached routes."""
        tracker = ShardedCandidateTracker(2, 5, shards=shards)
        clusters = [{f"g{i}a", f"g{i}b"} for i in range(4)]
        ids = (100, 101, 102, 103)
        tracker.advance_delta(
            clusters, ClusterDelta(ids=ids, status=(APPEARED,) * 4,
                                   vanished=()), 0, 0)
        # A changed tick routes every candidate, caching its support.
        tracker.advance_delta(
            clusters, ClusterDelta(ids=ids, status=(CHANGED,) * 4,
                                   vanished=()), 1, 1)
        assert set(tracker._route_cache) == set(ids)
        return tracker, clusters, ids

    def test_sweep_spares_live_routes(self):
        tracker, clusters, ids = self._tracker_with_live_routes()
        # Dead routes accumulate (support ids are never reused); stuff
        # the cache past the sweep threshold with routes no live
        # candidate uses.
        tracker._route_cache.update(
            {cid: 0 for cid in range(10_000, 12_000)}
        )
        # A new support id forces a cache miss, triggering the sweep.
        grown = clusters + [{"newa", "newb"}]
        grown_ids = ids + (104,)
        tracker.advance_delta(
            grown, ClusterDelta(ids=grown_ids,
                                status=(CHANGED,) * 4 + (APPEARED,),
                                vanished=()), 2, 2)
        tracker.advance_delta(
            grown, ClusterDelta(ids=grown_ids, status=(CHANGED,) * 5,
                                vanished=()), 3, 3)
        assert tracker.counters["route_cache_resets"] == 1
        # Only dead entries were evicted; every live support kept its
        # (correct) route, so no rendezvous recompute burst follows.
        assert set(tracker._route_cache) == set(grown_ids)
        for cid in grown_ids:
            assert tracker._route_cache[cid] == rendezvous_shard(
                cid, tracker.shards)

    def test_no_sweep_below_threshold(self):
        tracker, clusters, ids = self._tracker_with_live_routes()
        grown = clusters + [{"newa", "newb"}]
        grown_ids = ids + (104,)
        tracker.advance_delta(
            grown, ClusterDelta(ids=grown_ids,
                                status=(CHANGED,) * 4 + (APPEARED,),
                                vanished=()), 2, 2)
        tracker.advance_delta(
            grown, ClusterDelta(ids=grown_ids, status=(CHANGED,) * 5,
                                vanished=()), 3, 3)
        assert tracker.counters["route_cache_resets"] == 0
        assert set(tracker._route_cache) == set(grown_ids)
