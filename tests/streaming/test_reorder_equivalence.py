"""Differential fuzz suite: reordered ingestion == in-order ingestion.

The delta suite (``test_delta_equivalence.py``) proved the diff-aware
candidate path identical to the classic one.  This suite is the same
contract one layer further out: a jittered, duplicated, gap-ridden feed
pushed through a :class:`~repro.streaming.ReorderBuffer` (standalone or
via ``StreamingConvoyMiner(reorder=...)``) must produce convoys
bit-for-bit equal to feeding the same snapshots in order with no buffer —
across all three clusterer pipelines (fresh DBSCAN, incremental
clustering, incremental + cluster-diff candidate splicing), both
``paper_semantics`` modes, explicit time gaps, and bounded windows.

Two layers of the claim:

* **Stream restoration** — ``reorder_ticks`` over any within-lateness
  jittered feed yields exactly the sorted tick sequence (duplicate pushes
  merged back into whole snapshots).  This is the buffer's whole
  contract, checked bit-for-bit on the ticks themselves.
* **Convoy equality** — the buffered miners' emissions (every ``feed``
  return plus ``flush``) concatenate to exactly the in-order miners'
  emissions, and the three buffered pipelines agree with each other at
  every single ``feed`` call (tick-for-tick, not just at the end).

The seeded workload generator and the miner factories are the shared
fixtures of ``tests/streaming/conftest.py``; every knob is drawn from a
seeded RNG so failures replay exactly, and each seed is its own test
case.
"""

import random

import pytest

from repro.core.verification import normalize_convoys
from repro.streaming import reorder_ticks

SEMANTICS = (False, True)
PIPELINES = ("delta", "pr2", "full")


class TestStreamRestoration:
    @pytest.mark.parametrize("seed", range(12))
    def test_reorder_ticks_restores_the_sorted_feed(self, fuzz_workload,
                                                    seed):
        base, feed, lateness = fuzz_workload(seed)
        restored = list(reorder_ticks(feed, allowed_lateness=lateness))
        assert restored == base

    @pytest.mark.parametrize("seed", range(4))
    def test_restoration_survives_a_max_pending_cap(self, fuzz_workload,
                                                    seed):
        """A capacity cap at least as deep as the watermark needs never
        forces an early release, so restoration is unchanged."""
        base, feed, lateness = fuzz_workload(seed)
        restored = list(reorder_ticks(
            feed, allowed_lateness=lateness, max_pending=lateness + 1
        ))
        assert restored == base


class TestConvoyEquivalence:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("seed", range(8))
    def test_all_pipelines_match_in_order_run(self, make_miner,
                                              fuzz_workload, seed,
                                              paper_semantics):
        base, feed, lateness = fuzz_workload(seed)
        for pipeline in PIPELINES:
            plain = make_miner(pipeline, 3, 5, 8.0,
                               paper_semantics=paper_semantics)
            expected = []
            for t, snapshot in base:
                expected.extend(plain.feed(t, dict(snapshot)))
            expected.extend(plain.flush())

            buffered = make_miner(
                pipeline, 3, 5, 8.0, paper_semantics=paper_semantics,
                reorder=dict(allowed_lateness=lateness),
            )
            got = []
            for t, snapshot in feed:
                got.extend(buffered.feed(t, snapshot))
            got.extend(buffered.flush())
            assert got == expected, (
                f"seed {seed}: {pipeline} pipeline diverged through the "
                f"reorder buffer (paper_semantics={paper_semantics})"
            )
            assert buffered.counters["late_dropped"] == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_three_pipelines_agree_tick_for_tick(self, make_miner,
                                                 fuzz_workload, seed):
        """Beyond the final answer: at every push, the three buffered
        pipelines release the same ticks and emit the same convoys."""
        _base, feed, lateness = fuzz_workload(seed)
        miners = {
            pipeline: make_miner(
                pipeline, 3, 5, 8.0,
                reorder=dict(allowed_lateness=lateness),
            )
            for pipeline in PIPELINES
        }
        for t, snapshot in feed:
            emitted = {
                name: miner.feed(t, dict(snapshot))
                for name, miner in miners.items()
            }
            assert emitted["delta"] == emitted["pr2"] == emitted["full"], (
                f"seed {seed}, push t={t}: delta {emitted['delta']} / "
                f"pr2 {emitted['pr2']} / full {emitted['full']}"
            )
            live = {name: miner.live_candidates
                    for name, miner in miners.items()}
            assert live["delta"] == live["pr2"] == live["full"]
        flushed = {name: miner.flush() for name, miner in miners.items()}
        assert flushed["delta"] == flushed["pr2"] == flushed["full"]
        # The splice path must actually engage, or the delta leg of this
        # suite is vacuous.
        assert miners["delta"].counters["delta_steps"] > 0

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("window", [5, 8])
    def test_bounded_window_interacts_identically(self, make_miner,
                                                  fuzz_workload,
                                                  paper_semantics, window):
        """prune_longer_than() fires during buffered replay exactly as in
        order: fragments and their boundaries must not move."""
        base, feed, lateness = fuzz_workload(97)
        for pipeline in PIPELINES:
            plain = make_miner(pipeline, 3, 5, 8.0,
                               paper_semantics=paper_semantics,
                               window=window)
            expected = []
            for t, snapshot in base:
                expected.extend(plain.feed(t, dict(snapshot)))
            expected.extend(plain.flush())

            buffered = make_miner(
                pipeline, 3, 5, 8.0, paper_semantics=paper_semantics,
                window=window, reorder=dict(allowed_lateness=lateness),
            )
            got = []
            for t, snapshot in feed:
                got.extend(buffered.feed(t, snapshot))
            got.extend(buffered.flush())
            assert got == expected, (
                f"{pipeline} pipeline diverged under window={window}"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_scrambled_duplicate_order_same_convoy_set(self, make_miner,
                                                       fuzz_workload, seed):
        """Split reports whose parts arrive in scrambled key order can
        legitimately reorder same-tick emissions (snapshot key order
        seeds cluster creation order), but the *set* of convoys — the
        actual answer — must not move."""
        rng = random.Random(1000 + seed)
        base, feed, lateness = fuzz_workload(seed)
        scrambled = []
        for t, snapshot in feed:
            items = list(snapshot.items())
            rng.shuffle(items)
            if len(items) >= 2 and rng.random() < 0.5:
                cut = rng.randint(1, len(items) - 1)
                scrambled.append((t, dict(items[:cut])))
                scrambled.append((t, dict(items[cut:])))
            else:
                scrambled.append((t, dict(items)))
        plain = make_miner("full", 3, 5, 8.0)
        expected = []
        for t, snapshot in base:
            expected.extend(plain.feed(t, dict(snapshot)))
        expected.extend(plain.flush())
        buffered = make_miner(
            "full", 3, 5, 8.0, reorder=dict(allowed_lateness=lateness),
        )
        got = []
        for t, snapshot in scrambled:
            got.extend(buffered.feed(t, snapshot))
        got.extend(buffered.flush())
        assert normalize_convoys(got) == normalize_convoys(expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_drop_policy_with_sufficient_lateness_never_drops(self,
                                                              make_miner,
                                                              fuzz_workload,
                                                              seed):
        """Within the watermark, the policies are indistinguishable: the
        drop policy must not fire and the answer must not move."""
        base, feed, lateness = fuzz_workload(seed)
        raise_miner = make_miner(
            "delta", 3, 5, 8.0, reorder=dict(allowed_lateness=lateness),
        )
        drop_miner = make_miner(
            "delta", 3, 5, 8.0,
            reorder=dict(allowed_lateness=lateness, late_policy="drop"),
        )
        got_raise, got_drop = [], []
        for t, snapshot in feed:
            got_raise.extend(raise_miner.feed(t, dict(snapshot)))
            got_drop.extend(drop_miner.feed(t, dict(snapshot)))
        got_raise.extend(raise_miner.flush())
        got_drop.extend(drop_miner.flush())
        assert got_raise == got_drop
        assert drop_miner.counters["late_dropped"] == 0
