"""Differential suite: vector numeric backend == python, bit for bit.

The vector backend (:mod:`repro.clustering.numeric`) replaces all three
per-tick hot kernels — snapshot neighbourhood search, the incremental
clusterer's dirty-region patching, and the candidate matching join —
with batched contiguous-array implementations.  Its whole contract is
that nothing observable moves.  This suite holds a
``backend="vector"`` :class:`~repro.streaming.StreamingConvoyMiner`
equal to the ``backend="python"`` one **tick for tick** — same convoys
at every single ``feed``, same flush, same live candidate sets, same
counters — across:

* all three clusterer pipelines (fresh DBSCAN, incremental clustering,
  incremental + cluster-diff candidate splicing);
* both ``paper_semantics`` modes;
* sharded trackers (the vector kernel crossing the executor boundary,
  including the pickling process path);
* time gaps, bounded windows, turnover, and jittered feeds through a
  reorder buffer;
* both kernel modes of the vector backend — numpy and the
  ``array('d')``/memoryview fallback (``numeric.np`` forced to None).
"""

import pytest

import repro.clustering.numeric as numeric
from repro.streaming import churn_stream

SEMANTICS = (False, True)
PIPELINES = ("delta", "pr2", "full")

#: Counter keys that must agree bit-for-bit between the two backends
#: (the numeric backend adds no keys of its own, so this is everything
#: the engine, tracker, and clusterer report).
SHARED_COUNTER_KEYS = (
    "snapshots",
    "clustering_calls",
    "clustered_points",
    "convoys_emitted",
    "peak_candidates",
    "advance_steps",
    "delta_steps",
    "spliced_candidates",
    "reintersected_candidates",
)


@pytest.fixture(params=["numpy", "fallback"])
def vector_mode(request, monkeypatch):
    """Run each equivalence case with and without numpy acceleration."""
    if request.param == "fallback":
        monkeypatch.setattr(numeric, "np", None)
    elif numeric.np is None:
        pytest.skip("numpy not installed")
    return request.param


def run_backend_pair(ticks, python_miner, vector_miner):
    """Feed both miners every tick; assert emissions and live state equal."""
    for t, snapshot in ticks:
        expected = python_miner.feed(t, dict(snapshot))
        got = vector_miner.feed(t, dict(snapshot))
        assert got == expected, f"tick {t}: vector backend diverged"
        assert vector_miner.live_candidates == python_miner.live_candidates, (
            f"tick {t}: live candidate sets diverged"
        )
    assert vector_miner.flush() == python_miner.flush()
    for key in SHARED_COUNTER_KEYS:
        assert (
            vector_miner.counters[key] == python_miner.counters[key]
        ), key
    return python_miner, vector_miner


class TestAllPipelines:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_churn_stream(self, make_miner, vector_mode, pipeline,
                          paper_semantics):
        ticks = list(churn_stream(80, 40, seed=101, eps=8.0, churn=0.1,
                                  turnover=0.03, area=96.0))
        run_backend_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics, backend="python"),
            make_miner(pipeline, 3, 5, 8.0,
                       paper_semantics=paper_semantics, backend="vector"),
        )

    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_gaps_and_window(self, make_miner, vector_mode, pipeline):
        """Gap severing, prune_longer_than re-seeding, and the vector
        clusterer's persistent index all interact across a gap."""
        ticks = [
            (t, snapshot)
            for t, snapshot in churn_stream(70, 45, seed=103, eps=8.0,
                                            churn=0.08, turnover=0.02,
                                            area=96.0)
            if t % 11 != 7
        ]
        run_backend_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0, window=7, backend="python"),
            make_miner(pipeline, 3, 5, 8.0, window=7, backend="vector"),
        )

    def test_high_churn_full_pass_fallback(self, make_miner, vector_mode):
        """Above the churn threshold the incremental clusterer rebuilds
        from scratch — the vector bulk-load path — mid-stream."""
        ticks = list(churn_stream(60, 30, seed=107, eps=8.0, churn=0.6,
                                  area=96.0))
        python_miner, vector_miner = run_backend_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0, backend="python"),
            make_miner("delta", 3, 5, 8.0, backend="vector"),
        )
        assert vector_miner.clusterer.counters["full_passes"] > 1

    def test_empty_and_below_m_ticks(self, make_miner, vector_mode):
        ticks = [
            (0, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (1, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (2, {"a": (0.0, 0.0)}),            # below m: closes chains
            (3, {}),                           # empty: still no clusters
            (4, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
            (5, {"a": (0.0, 0.0), "b": (1.0, 0.0), "c": (0.0, 1.0)}),
        ]
        run_backend_pair(
            ticks,
            make_miner("full", 2, 2, 2.0, backend="python"),
            make_miner("full", 2, 2, 2.0, backend="vector"),
        )


class TestShardedVector:
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_serial_shards(self, make_miner, vector_mode, pipeline):
        """The vector matching kernel inside the shard seam: a sharded
        vector run must equal the unsharded python run exactly."""
        ticks = list(churn_stream(70, 35, seed=109, eps=8.0, churn=0.12,
                                  turnover=0.02, area=96.0))
        python_miner, vector_miner = run_backend_pair(
            ticks,
            make_miner(pipeline, 3, 5, 8.0, backend="python"),
            make_miner(pipeline, 3, 5, 8.0, backend="vector", shards=3,
                       executor="serial"),
        )
        assert vector_miner.counters["sharded_candidates"] > 0

    def test_process_executor(self, make_miner):
        """The backend *name* crosses the pickling boundary and the
        worker resolves the vector kernel on its side."""
        ticks = list(churn_stream(60, 25, seed=113, eps=8.0, churn=0.12,
                                  area=96.0))
        run_backend_pair(
            ticks,
            make_miner("delta", 3, 5, 8.0, backend="python"),
            make_miner("delta", 3, 5, 8.0, backend="vector", shards=2,
                       executor="process"),
        )


class TestReorderedFeeds:
    @pytest.mark.parametrize("seed", range(3))
    def test_reorder_buffer_in_front_of_vector_backend(self, make_miner,
                                                       fuzz_workload,
                                                       vector_mode, seed):
        """Out-of-order arrivals through the watermark buffer into the
        fully vectorized pipeline: still the plain in-order answer."""
        base_ticks, feed, lateness = fuzz_workload(seed)
        plain = make_miner("delta", 3, 5, 8.0, backend="python")
        expected = []
        for t, snapshot in base_ticks:
            expected.extend(plain.feed(t, dict(snapshot)))
        expected.extend(plain.flush())

        vector_miner = make_miner(
            "delta", 3, 5, 8.0, backend="vector",
            reorder=dict(allowed_lateness=lateness),
        )
        got = []
        for t, snapshot in feed:
            got.extend(vector_miner.feed(t, snapshot))
        got.extend(vector_miner.flush())
        assert got == expected


class TestOfflineDrivers:
    def test_cmc_backend_parameter(self, vector_mode):
        """The batch driver forwards the backend; answers are equal."""
        from repro.core.cmc import cmc
        from repro.datasets import DATASETS

        db = DATASETS["cattle"](scale=0.004).database
        assert cmc(db, 3, 3, 10.0, backend="vector") == (
            cmc(db, 3, 3, 10.0, backend="python")
        )

    def test_mine_stream_backend_parameter(self, vector_mode):
        from repro.streaming import mine_stream, synthetic_stream

        ticks = list(synthetic_stream(60, 25, seed=11, eps=8.0))
        assert mine_stream(
            iter(ticks), 3, 5, 8.0, backend="vector",
            clusterer="incremental", shards=2,
        ) == mine_stream(iter(ticks), 3, 5, 8.0)
