"""Offline/streaming equivalence: replaying a database through the
streaming engine must reproduce offline ``cmc()`` exactly.

Both paths drive the same engine core, so the equality asserted here is
the refactoring's contract: identical convoys (same object sets, same
intervals, same discovery order) under both candidate-semantics modes, on
random databases, on a paper-like dataset, and on databases whose objects
appear and disappear mid-stream.  The counters additionally certify the
streaming cost model: one clustering pass per fed snapshot, never a
full-history recompute.
"""

import pytest

from repro.core.cmc import cmc
from repro.datasets import synthetic_dataset, taxi_dataset
from repro.streaming import mine_stream, replay_database
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory

SEMANTICS = (False, True)


def random_database(seed, alive_fraction=(1.0, 1.0), keep_probability=1.0):
    """A seeded random database with planted co-movement episodes."""
    return synthetic_dataset(
        f"rand{seed}",
        seed,
        n_objects=35,
        t_domain=50,
        eps=5.0,
        m=3,
        k=6,
        episode_count=5,
        episode_size=(3, 5),
        alive_fraction=alive_fraction,
        keep_probability=keep_probability,
    )


def assert_stream_matches_offline(spec, paper_semantics):
    counters = {}
    offline = cmc(
        spec.database, spec.m, spec.k, spec.eps,
        paper_semantics=paper_semantics,
    )
    streamed = mine_stream(
        replay_database(spec.database), spec.m, spec.k, spec.eps,
        paper_semantics=paper_semantics, counters=counters,
    )
    assert streamed == offline
    return counters


class TestRandomDatabases:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_replay_equals_offline(self, seed, paper_semantics):
        spec = random_database(seed)
        counters = assert_stream_matches_offline(spec, paper_semantics)
        # Every object is alive for the whole domain, so every snapshot is
        # clustered: exactly one clustering call per fed snapshot.
        assert counters["snapshots"] == spec.database.time_domain_length
        assert counters["clustering_calls"] == counters["snapshots"]

    @pytest.mark.parametrize("seed", [7, 19])
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_midstream_appearance_and_disappearance(self, seed, paper_semantics):
        """Objects joining/leaving mid-stream don't break the equivalence."""
        spec = random_database(
            seed, alive_fraction=(0.2, 0.8), keep_probability=0.7
        )
        lifetimes = {(tr.start_time, tr.end_time) for tr in spec.database}
        assert len(lifetimes) > 1, "dataset must stagger object lifetimes"
        counters = assert_stream_matches_offline(spec, paper_semantics)
        # Snapshots with < m alive objects are not clustered, but no
        # snapshot is ever clustered twice.
        assert counters["clustering_calls"] <= counters["snapshots"]


class TestPaperLikeDataset:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_taxi_like_replay_equals_offline(self, paper_semantics):
        spec = taxi_dataset(scale=0.1)
        assert_stream_matches_offline(spec, paper_semantics)


class TestShardedReplay:
    """The sharded tracker preserves the offline equality end to end
    (the dedicated bit-for-bit suite is test_sharded_equivalence.py)."""

    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_replay_equals_offline(self, make_miner, shards,
                                           paper_semantics):
        spec = random_database(101)
        offline = cmc(
            spec.database, spec.m, spec.k, spec.eps,
            paper_semantics=paper_semantics,
        )
        miner = make_miner(
            "full", spec.m, spec.k, spec.eps,
            paper_semantics=paper_semantics, shards=shards,
        )
        streamed = []
        for t, snapshot in replay_database(spec.database):
            streamed.extend(miner.feed(t, snapshot))
        streamed.extend(miner.flush())
        assert streamed == offline
        assert miner.counters["sharded_candidates"] > 0


class TestHandMadeEdgeCases:
    @pytest.mark.parametrize("paper_semantics", SEMANTICS)
    def test_convoy_interrupted_by_sparse_snapshot(self, paper_semantics):
        """A mid-domain tick with < m alive objects splits the convoy."""
        # a rides the whole domain; b leaves after t=4 and c only appears
        # at t=7, so t=5..6 have a single alive object (< m).
        db = TrajectoryDatabase(
            [
                Trajectory("a", [(float(t), 0.0, t) for t in range(12)]),
                Trajectory("b", [(float(t), 1.0, t) for t in range(5)]),
                Trajectory("c", [(float(t), 1.0, t) for t in range(7, 12)]),
            ]
        )
        offline = cmc(db, 2, 3, 2.0, paper_semantics=paper_semantics)
        streamed = mine_stream(
            replay_database(db), 2, 3, 2.0, paper_semantics=paper_semantics
        )
        assert streamed == offline
        intervals = sorted(c.interval for c in streamed)
        assert intervals == [(0, 4), (7, 11)]
