"""Shared pipeline-comparison helpers for the streaming differential suites.

Every differential suite in this directory compares the same three
clusterer pipelines — fresh DBSCAN (+ classic candidate advance),
incremental clustering with its delta withheld (PR 2's path), and
incremental clustering with the cluster diff propagated into the
candidate tracker (the delta path) — optionally behind a reorder buffer
and/or a sharded tracker.  The miner factories, the lockstep driver, and
the seeded fuzz-workload generator used to be copy-pasted per suite;
they live here once, exposed as fixtures:

* ``make_miner(pipeline, m, k, eps, **kwargs)`` — one miner for one
  pipeline name (``"delta"`` / ``"pr2"`` / ``"full"``); extra kwargs
  (``paper_semantics``, ``window``, ``reorder``, ``shards``,
  ``executor``, clusterer options) forward to the engine.
* ``make_pipeline_miners(m, k, eps, **kwargs)`` — the full dict of all
  three, for lockstep comparisons.
* ``assert_lockstep(ticks, miners, flush=True)`` — feed every miner the
  same ticks, assert identical emissions at every single ``feed`` (and
  at ``flush``); returns the miners for follow-up counter assertions.
* ``fuzz_workload(seed)`` — one complete seeded out-of-order workload:
  ``(in_order_ticks, shuffled_feed, lateness)`` with bounded jitter,
  optional whole-tick gaps, and duplicate-timestamp splits whose merged
  union equals the original snapshot.
"""

import random

import pytest

from repro.clustering.incremental import IncrementalSnapshotClusterer
from repro.streaming import StreamingConvoyMiner, churn_stream, jitter_ticks

#: The three clusterer pipelines every differential suite compares.
PIPELINE_NAMES = ("delta", "pr2", "full")


class PipelineClusterOnly:
    """Hide ``cluster_with_delta`` so the engine runs PR 2's classic path."""

    def __init__(self, inner):
        self.inner = inner

    def cluster(self, snapshot):
        return self.inner.cluster(snapshot)


def build_miner(pipeline, m, k, eps, *, paper_semantics=False, window=None,
                reorder=None, shards=None, executor=None, backend=None,
                resident=False, store=None, **clusterer_kwargs):
    """One :class:`StreamingConvoyMiner` for one named pipeline.

    ``backend`` (the numeric backend, "python"/"vector") is forwarded to
    both the engine and the pipeline's own clusterer instance, so a
    backend-parameterized suite exercises every vectorized seam at once.
    ``store`` (a ConvoyStore or path) forwards to the engine's
    write-through persistence sink.
    """
    if pipeline not in PIPELINE_NAMES:
        raise ValueError(f"unknown pipeline {pipeline!r}")
    if backend is not None:
        clusterer_kwargs["backend"] = backend
    clusterer = None
    if pipeline != "full":
        clusterer = IncrementalSnapshotClusterer(eps, m, **clusterer_kwargs)
        if pipeline == "pr2":
            clusterer = PipelineClusterOnly(clusterer)
    return StreamingConvoyMiner(
        m, k, eps, paper_semantics=paper_semantics, window=window,
        clusterer=clusterer, reorder=reorder, shards=shards,
        executor=executor, backend=backend, resident=resident,
        store=store,
    )


def build_pipeline_miners(m, k, eps, **kwargs):
    """One miner per pipeline name, all built with the same kwargs."""
    return {
        name: build_miner(name, m, k, eps, **kwargs)
        for name in PIPELINE_NAMES
    }


def run_lockstep(ticks, miners, flush=True):
    """Feed every miner the same ticks; compare each feed's emissions."""
    names = list(miners)
    for t, snapshot in ticks:
        emitted = {
            name: miner.feed(t, dict(snapshot))
            for name, miner in miners.items()
        }
        first = emitted[names[0]]
        for name in names[1:]:
            assert emitted[name] == first, (
                f"tick {t}: {name} {emitted[name]} diverged from "
                f"{names[0]} {first}"
            )
    if flush:
        flushed = {name: miner.flush() for name, miner in miners.items()}
        first = flushed[names[0]]
        for name in names[1:]:
            assert flushed[name] == first, (
                f"flush: {name} {flushed[name]} diverged from "
                f"{names[0]} {first}"
            )
    return miners


def build_fuzz_workload(seed):
    """Draw one complete out-of-order workload from a seeded RNG.

    Returns ``(in_order_ticks, shuffled_feed, lateness)`` where the feed
    contains bounded jitter, optional whole-tick gaps, and adjacent
    duplicate-timestamp splits whose merged union equals the original
    snapshot — everything a reorder buffer promises to absorb losslessly.
    """
    rng = random.Random(seed)
    n_objects = rng.randint(25, 60)
    n_snapshots = rng.randint(25, 45)
    base = list(churn_stream(
        n_objects, n_snapshots,
        seed=rng.randrange(1 << 20),
        eps=8.0,
        churn=rng.choice([0.02, 0.05, 0.15]),
        turnover=rng.choice([0.0, 0.05]),
        area=12.0 * 8.0,
    ))
    if rng.random() < 0.5:
        # Whole-tick gaps: the engine must sever chains during the
        # buffered replay exactly as it does in order.
        kept = [tick for tick in base if rng.random() > 0.15]
        base = kept if len(kept) >= 5 else base
    jitter = rng.randint(2, 6)
    shuffled = list(jitter_ticks(
        base, jitter, seed=rng.randrange(1 << 20)
    ))
    feed = []
    for t, snapshot in shuffled:
        if len(snapshot) >= 2 and rng.random() < 0.35:
            # Split one report into two adjacent partial pushes for the
            # same timestamp; the buffer's merge must reassemble them.
            # The split keeps key order: snapshot key order is data (it
            # seeds cluster creation order), so an order-scrambling merge
            # can reorder same-tick emissions.
            items = list(snapshot.items())
            cut = rng.randint(1, len(items) - 1)
            feed.append((t, dict(items[:cut])))
            feed.append((t, dict(items[cut:])))
        else:
            feed.append((t, dict(snapshot)))
    # Jitter guarantees lateness strictly below `jitter`; max(jitter, 1)
    # also keeps adjacent duplicate pushes safe from instant release.
    return base, feed, max(jitter, 1)


@pytest.fixture
def make_miner():
    """Factory fixture: ``make_miner(pipeline, m, k, eps, **kwargs)``."""
    return build_miner


@pytest.fixture
def make_pipeline_miners():
    """Factory fixture: all three pipeline miners with shared kwargs."""
    return build_pipeline_miners


@pytest.fixture
def assert_lockstep():
    """Lockstep driver fixture (see :func:`run_lockstep`)."""
    return run_lockstep


@pytest.fixture
def cluster_only():
    """The delta-hiding clusterer wrapper (PR 2's pipeline)."""
    return PipelineClusterOnly


@pytest.fixture
def fuzz_workload():
    """Seeded out-of-order workload factory (see
    :func:`build_fuzz_workload`)."""
    return build_fuzz_workload
