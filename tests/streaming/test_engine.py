"""Unit tests for the streaming convoy-discovery engine."""

import pytest

from repro.core.convoy import Convoy
from repro.streaming import StreamingConvoyMiner, mine_stream


def pair_snapshot(t, apart=1.0):
    """Two objects travelling east together (plus optional separation)."""
    return {"a": (float(t), 0.0), "b": (float(t), apart)}


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingConvoyMiner(0, 3, 1.0)
        with pytest.raises(ValueError):
            StreamingConvoyMiner(2, 0, 1.0)
        with pytest.raises(ValueError):
            StreamingConvoyMiner(2, 3, 0.0)

    def test_rejects_window_below_k(self):
        with pytest.raises(ValueError):
            StreamingConvoyMiner(2, 5, 1.0, window=4)
        StreamingConvoyMiner(2, 5, 1.0, window=5)  # boundary is legal

    def test_rejects_time_going_backwards(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        miner.feed(5, pair_snapshot(5))
        with pytest.raises(ValueError):
            miner.feed(5, pair_snapshot(5))
        with pytest.raises(ValueError):
            miner.feed(4, pair_snapshot(4))

    def test_out_of_order_error_names_both_timestamps(self):
        """Regression: the non-increasing-time contract must fail loudly,
        naming the offending and the last-ingested timestamps."""
        miner = StreamingConvoyMiner(2, 3, 2.0)
        miner.feed(7, pair_snapshot(7))
        with pytest.raises(ValueError, match=r"t=4.*t=7"):
            miner.feed(4, pair_snapshot(4))
        with pytest.raises(ValueError, match=r"t=7.*t=7"):
            miner.feed(7, pair_snapshot(7))
        # The rejected feed must not have corrupted the stream: the next
        # legal snapshot is still accepted.
        miner.feed(8, pair_snapshot(8))
        assert miner.last_time == 8

    def test_feed_after_flush_raises(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        miner.feed(0, pair_snapshot(0))
        miner.flush()
        with pytest.raises(RuntimeError):
            miner.feed(1, pair_snapshot(1))

    def test_flush_is_idempotent(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(5):
            miner.feed(t, pair_snapshot(t))
        assert miner.flush() == [Convoy({"a", "b"}, 0, 4)]
        assert miner.flush() == []


class TestEndOfStreamFlush:
    def test_convoy_running_to_last_snapshot_is_emitted(self):
        """Regression: Algorithm 1 reproductions classically drop chains
        that are still open at the final timestamp because the pseudocode
        only reports on failed extension; ``flush`` must emit them."""
        miner = StreamingConvoyMiner(2, 4, 2.0)
        emitted = []
        for t in range(10):
            emitted.extend(miner.feed(t, pair_snapshot(t)))
        assert emitted == []  # never closed mid-stream...
        assert miner.flush() == [Convoy({"a", "b"}, 0, 9)]  # ...emitted here

    def test_flush_respects_minimum_lifetime(self):
        miner = StreamingConvoyMiner(2, 5, 2.0)
        for t in range(4):  # lifetime 4 < k=5
            miner.feed(t, pair_snapshot(t))
        assert miner.flush() == []

    def test_mine_stream_includes_the_flush(self):
        source = ((t, pair_snapshot(t)) for t in range(8))
        assert mine_stream(source, 2, 4, 2.0) == [Convoy({"a", "b"}, 0, 7)]


class TestIncrementalEmission:
    def test_convoy_emitted_as_soon_as_extension_fails(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        emitted = {}
        for t in range(10):
            apart = 1.0 if t < 5 else 50.0  # the pair separates at t=5
            emitted[t] = miner.feed(t, pair_snapshot(t, apart))
        assert emitted[5] == [Convoy({"a", "b"}, 0, 4)]
        assert all(not v for t, v in emitted.items() if t != 5)
        assert miner.flush() == []

    def test_empty_snapshot_closes_chains(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(4):
            miner.feed(t, pair_snapshot(t))
        assert miner.feed(4, {}) == [Convoy({"a", "b"}, 0, 3)]

    def test_below_m_snapshot_closes_chains(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(4):
            miner.feed(t, pair_snapshot(t))
        assert miner.feed(4, {"a": (4.0, 0.0)}) == [Convoy({"a", "b"}, 0, 3)]


class TestGapHandling:
    def test_time_gap_breaks_chains(self):
        """Definition 3 wants k *consecutive* points: a tick nobody
        reported at cannot be bridged by any chain."""
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(5):
            miner.feed(t, pair_snapshot(t))
        emitted = miner.feed(9, pair_snapshot(9))  # t=5..8 skipped
        assert emitted == [Convoy({"a", "b"}, 0, 4)]
        # The chain restarts at t=9, not across the gap.
        for t in range(10, 12):
            miner.feed(t, pair_snapshot(t))
        assert miner.flush() == [Convoy({"a", "b"}, 9, 11)]

    def test_gap_shorter_than_k_drops_the_run(self):
        miner = StreamingConvoyMiner(2, 5, 2.0)
        for t in range(3):  # lifetime 3 < k when the gap hits
            miner.feed(t, pair_snapshot(t))
        assert miner.feed(7, pair_snapshot(7)) == []


class TestBoundedWindow:
    def test_long_convoy_fragments_at_window(self):
        miner = StreamingConvoyMiner(2, 3, 2.0, window=5)
        emitted = []
        for t in range(12):
            emitted.extend(miner.feed(t, pair_snapshot(t)))
        emitted.extend(miner.flush())
        # Chains are cut every 5 ticks: [0,4], [5,9], then the tail [10,11]
        # dies at flush below k.
        assert emitted == [Convoy({"a", "b"}, 0, 4), Convoy({"a", "b"}, 5, 9)]

    def test_window_caps_candidate_age(self):
        miner = StreamingConvoyMiner(2, 3, 2.0, window=5)
        for t in range(50):
            miner.feed(t, pair_snapshot(t))
            for candidate in miner.live_candidates:
                assert candidate.lifetime < 5

    def test_unwindowed_reports_one_convoy(self):
        source = [(t, pair_snapshot(t)) for t in range(12)]
        assert mine_stream(iter(source), 2, 3, 2.0) == [
            Convoy({"a", "b"}, 0, 11)
        ]


class TestCounters:
    def test_one_clustering_call_per_snapshot(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(20):
            miner.feed(t, pair_snapshot(t))
        assert miner.counters["snapshots"] == 20
        assert miner.counters["clustering_calls"] == 20
        assert miner.counters["clustered_points"] == 40

    def test_below_m_snapshots_are_not_clustered(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        miner.feed(0, {"a": (0.0, 0.0)})
        miner.feed(1, {})
        assert miner.counters["snapshots"] == 2
        assert miner.counters["clustering_calls"] == 0

    def test_peak_candidates_and_emitted(self):
        miner = StreamingConvoyMiner(2, 3, 2.0)
        for t in range(5):
            miner.feed(t, pair_snapshot(t))
        assert miner.counters["peak_candidates"] == 1
        assert miner.live_candidate_count == 1
        miner.flush()
        assert miner.counters["convoys_emitted"] == 1

    def test_caller_supplied_counter_dict_is_used(self):
        counters = {}
        miner = StreamingConvoyMiner(2, 3, 2.0, counters=counters)
        miner.feed(0, pair_snapshot(0))
        assert counters["snapshots"] == 1
        assert counters is miner.counters


class TestPaperSemantics:
    def test_growing_group_missed_only_by_paper_rule(self):
        """A third object joining mid-way: the complete semantics reports
        the larger group's run, the published rule narrows past it."""
        def snapshot(t):
            snap = pair_snapshot(t)
            if t >= 4:
                snap["c"] = (float(t), 2.0)
            return snap

        source = [(t, snapshot(t)) for t in range(12)]
        complete = mine_stream(iter(source), 2, 4, 1.5)
        published = mine_stream(iter(source), 2, 4, 1.5,
                                paper_semantics=True)
        triple = Convoy({"a", "b", "c"}, 4, 11)
        assert triple in complete
        assert triple not in published
