"""Tests for the disc-based flock baseline and the lossy-flock problem."""

import pytest

from repro.baselines.flocks import discover_flocks
from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.verification import normalize_convoys
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


class TestDiscoverFlocks:
    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            discover_flocks(TrajectoryDatabase(), 2, 2, 0.0)

    def test_empty_database(self):
        assert discover_flocks(TrajectoryDatabase(), 2, 2, 1.0) == []

    def test_tight_group_found(self):
        db = db_of(
            ("a", [(t, 0.0, t) for t in range(8)]),
            ("b", [(t, 0.5, t) for t in range(8)]),
            ("c", [(t, 1.0, t) for t in range(8)]),
        )
        flocks = discover_flocks(db, 3, 5, 1.5)
        assert Convoy(["a", "b", "c"], 0, 7) in flocks

    def test_scattered_objects_no_flock(self):
        db = db_of(
            ("a", [(t, 0, t) for t in range(8)]),
            ("b", [(t, 100, t) for t in range(8)]),
        )
        assert discover_flocks(db, 2, 3, 1.0) == []


class TestLossyFlockProblem:
    def _linear_group_db(self):
        """Figure 1's configuration: four objects in a moving line with
        spacing 1.0; a disc of radius 1.2 centred on any member misses at
        least one end of the line, but the whole line is density-connected
        at e = 1.2."""
        return db_of(
            ("o1", [(t, 0.0, t) for t in range(10)]),
            ("o2", [(t, 1.0, t) for t in range(10)]),
            ("o3", [(t, 2.0, t) for t in range(10)]),
            ("o4", [(t, 3.0, t) for t in range(10)]),
        )

    def test_disc_loses_o4(self):
        db = self._linear_group_db()
        flocks = discover_flocks(db, 3, 5, 1.2)
        # Flocks of 3 exist, but no disc of radius 1.2 covers all four.
        assert any(f.size == 3 for f in flocks)
        assert not any(f.size == 4 for f in flocks)

    def test_convoy_keeps_the_whole_group(self):
        db = self._linear_group_db()
        convoys = normalize_convoys(cmc(db, 3, 5, 1.2))
        assert Convoy(["o1", "o2", "o3", "o4"], 0, 9) in convoys

    def test_oversized_disc_merges_groups(self):
        """The other failure mode: a disc big enough for one linear group
        swallows a second, separate group."""
        db = db_of(
            ("a1", [(t, 0.0, t) for t in range(10)]),
            ("a2", [(t, 1.0, t) for t in range(10)]),
            ("b1", [(t, 6.0, t) for t in range(10)]),
            ("b2", [(t, 7.0, t) for t in range(10)]),
        )
        flocks = discover_flocks(db, 2, 5, 7.5)
        merged = [f for f in flocks if f.size == 4]
        assert merged  # the disc cannot separate the two pairs
        # Density clustering with a sane e keeps them apart.
        convoys = normalize_convoys(cmc(db, 2, 5, 1.5))
        assert {frozenset(c.objects) for c in convoys} == {
            frozenset({"a1", "a2"}),
            frozenset({"b1", "b2"}),
        }
