"""Tests for the MC2 moving-cluster baseline (Section 2.1, Appendix B.1)."""

import pytest

from repro.baselines.moving_clusters import MovingCluster, mc2, mc2_convoy_answers
from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.verification import false_negative_rate, normalize_convoys
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


class TestMovingClusterType:
    def test_properties(self):
        mc = MovingCluster(
            (frozenset({"a", "b", "c"}), frozenset({"b", "c", "d"})), 5
        )
        assert mc.t_end == 6
        assert mc.lifetime == 2
        assert mc.common_objects == frozenset({"b", "c"})

    def test_as_convoy(self):
        mc = MovingCluster((frozenset({"a", "b"}), frozenset({"a", "b"})), 0)
        assert mc.as_convoy() == Convoy(["a", "b"], 0, 1)

    def test_as_convoy_empty_common(self):
        mc = MovingCluster((frozenset({"a", "b"}), frozenset({"c", "d"})), 0)
        assert mc.as_convoy() is None


class TestMc2:
    def test_theta_validation(self):
        db = db_of(("a", [(0, 0, 0), (1, 0, 1)]))
        with pytest.raises(ValueError):
            mc2(db, 1.0, 2, 0.0)
        with pytest.raises(ValueError):
            mc2(db, 1.0, 2, 1.5)

    def test_stable_group_single_chain(self):
        db = db_of(
            ("a", [(t, 0, t) for t in range(6)]),
            ("b", [(t, 1, t) for t in range(6)]),
        )
        chains = mc2(db, 2.0, 2, 1.0)
        assert len(chains) == 1
        assert chains[0].lifetime == 6
        assert chains[0].common_objects == frozenset({"a", "b"})

    def test_figure2a_convoy_missed_at_theta_one(self):
        """Figure 2(a): o2,o3,o4 convoy for 3 time points, but a fourth
        object joins the snapshot cluster at t=1 only, so with θ=1 the
        chain breaks — a false negative for the convoy query."""
        db = db_of(
            ("o1", [(0, 1, 0), (50, 50, 1), (80, 80, 2)]),   # present in c0 only
            ("o2", [(1, 0, 0), (11, 0, 1), (21, 0, 2)]),
            ("o3", [(1, 1, 0), (11, 1, 1), (21, 1, 2)]),
            ("o4", [(0, 0, 0), (10, 0, 1), (20, 0, 2)]),
        )
        chains = mc2(db, 2.0, 2, 1.0)
        exact = normalize_convoys(cmc(db, 3, 3, 2.0))
        assert Convoy(["o2", "o3", "o4"], 0, 2) in exact
        answers = [c.as_convoy() for c in chains if c.as_convoy()]
        assert false_negative_rate(answers, exact) == 100.0

    def test_low_theta_produces_false_positives(self):
        """A cluster whose membership drifts completely (a -> b -> c)
        chains under θ=0.5 even though no convoy exists."""
        db = db_of(
            ("a", [(0, 0, 0), (1, 0, 1), (100, 100, 2), (120, 120, 3)]),
            ("b", [(0, 1, 0), (1, 1, 1), (2, 1, 2), (130, 0, 3)]),
            ("c", [(40, 0, 0), (1, 2, 1), (2, 2, 2), (3, 2, 3)]),
            ("d", [(50, 0, 0), (60, 0, 1), (2, 3, 2), (3, 3, 3)]),
        )
        chains = mc2(db, 1.5, 2, 0.5)
        longest = max(chains, key=lambda c: c.lifetime)
        # The drifting chain survives multiple steps...
        assert longest.lifetime >= 3
        # ... but the exact convoy answer for k=3 is empty.
        assert cmc(db, 2, 4, 1.5) == []

    def test_no_lifetime_constraint(self):
        """MC2 has no k parameter: 2-step chains are reported."""
        db = db_of(
            ("a", [(0, 0, 0), (1, 0, 1), (100, 0, 2)]),
            ("b", [(0, 1, 0), (1, 1, 1), (200, 0, 2)]),
        )
        answers = mc2_convoy_answers(db, 2.0, 2, 1.0)
        assert Convoy(["a", "b"], 0, 1) in answers

    def test_convoy_answers_drop_empty_common(self):
        db = db_of(
            ("a", [(0, 0, 0), (1, 0, 1)]),
            ("b", [(0, 1, 0), (1, 1, 1)]),
        )
        answers = mc2_convoy_answers(db, 2.0, 2, 0.5)
        assert all(a.objects for a in answers)


class TestFig19Metrics:
    def test_rates_move_with_theta(self):
        """Higher θ fragments chains: false negatives cannot decrease."""
        import random

        rng = random.Random(42)
        trajs = []
        for i in range(12):
            pts = []
            x, y = rng.uniform(0, 40), rng.uniform(0, 40)
            for t in range(30):
                x += rng.uniform(-2, 2)
                y += rng.uniform(-2, 2)
                pts.append((x, y, t))
            trajs.append(Trajectory(f"o{i}", pts))
        # Plus one guaranteed convoy.
        trajs.append(Trajectory("c1", [(t, 100, t) for t in range(30)]))
        trajs.append(Trajectory("c2", [(t, 101, t) for t in range(30)]))
        db = TrajectoryDatabase(trajs)
        m, k, eps = 2, 8, 4.0
        exact = normalize_convoys(cmc(db, m, k, eps))
        assert exact  # the planted convoy is found
        rates = []
        for theta in (0.4, 1.0):
            answers = mc2_convoy_answers(db, eps, m, theta)
            rates.append(false_negative_rate(answers, exact))
        assert rates[0] <= rates[1]
