"""End-to-end runs on the paper-like datasets (tiny scales)."""

import pytest

from repro import (
    DATASETS,
    cmc,
    convoy_sets_equal,
    cuts,
    load_trajectories_csv,
    normalize_convoys,
    save_trajectories_csv,
)
from repro.baselines.moving_clusters import mc2_convoy_answers
from repro.core.verification import false_negative_rate, false_positive_rate

SMALL = {
    "truck": dict(scale=0.02),
    "cattle": dict(scale=0.002),
    "car": dict(scale=0.02),
    "taxi": dict(scale=0.15),
}


@pytest.fixture(scope="module")
def specs():
    return {name: gen(**SMALL[name]) for name, gen in DATASETS.items()}


@pytest.fixture(scope="module")
def exact_results(specs):
    return {
        name: normalize_convoys(
            cmc(spec.database, spec.m, spec.k, spec.eps)
        )
        for name, spec in specs.items()
    }


@pytest.mark.parametrize("name", ["truck", "cattle", "car", "taxi"])
@pytest.mark.parametrize("variant", ["cuts", "cuts+", "cuts*"])
def test_cuts_family_matches_cmc_on_datasets(specs, exact_results, name, variant):
    spec = specs[name]
    result = cuts(spec.database, spec.m, spec.k, spec.eps, variant=variant)
    assert convoy_sets_equal(exact_results[name], result.convoys)


@pytest.mark.parametrize("name", ["truck", "cattle", "car"])
def test_datasets_contain_convoys(exact_results, name):
    assert exact_results[name]


def test_mc2_is_not_a_convoy_algorithm(specs):
    """Appendix B.1 in miniature: MC2 has no lifetime constraint, so under
    a demanding ``k`` (the paper uses k=180, far above typical chain
    lengths) its answer set contains false positives at every θ."""
    spec = specs["truck"]
    demanding_k = 3 * spec.k
    exact = normalize_convoys(
        cmc(spec.database, spec.m, demanding_k, spec.eps)
    )
    total_error = 0.0
    for theta in (0.4, 0.6, 0.8, 1.0):
        answers = mc2_convoy_answers(spec.database, spec.eps, spec.m, theta)
        total_error += false_positive_rate(
            answers, spec.database, spec.m, demanding_k, spec.eps
        )
        total_error += false_negative_rate(answers, exact)
    assert total_error > 0.0


def test_csv_round_trip_preserves_query_answers(tmp_path, specs, exact_results):
    spec = specs["car"]
    path = tmp_path / "car.csv"
    save_trajectories_csv(spec.database, path)
    reloaded = load_trajectories_csv(path)
    convoys = normalize_convoys(cmc(reloaded, spec.m, spec.k, spec.eps))
    assert convoy_sets_equal(convoys, exact_results["car"])


def test_phase_durations_recorded(specs):
    spec = specs["cattle"]
    result = cuts(spec.database, spec.m, spec.k, spec.eps, variant="cuts*")
    assert all(v >= 0 for v in result.durations.values())
    assert result.simplification["original_points"] == spec.database.total_points
