"""The headline guarantee, as a property: CuTS == CMC.

Hypothesis drives random trajectory databases (irregular sampling, varying
lifetimes) and adversarial query/internal parameters through all three
variants and both candidate semantics switches; every run must return
exactly the exact algorithm's normalized answer set.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cmc import cmc
from repro.core.cuts import cuts
from repro.core.verification import (
    convoy_sets_equal,
    is_valid_convoy,
    normalize_convoys,
)
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def build_database(seed, n, T, keep):
    rng = random.Random(seed)
    trajs = []
    for i in range(n):
        a = rng.randint(0, max(0, T - 4))
        b = rng.randint(a + 3, max(a + 3, T))
        pts = []
        x, y = rng.uniform(0, 40), rng.uniform(0, 40)
        for t in range(a, b + 1):
            x += rng.uniform(-2.5, 2.5)
            y += rng.uniform(-2.5, 2.5)
            if rng.random() < keep or t in (a, b):
                pts.append((x, y, t))
        trajs.append(Trajectory(f"o{i}", pts))
    return TrajectoryDatabase(trajs)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=4, max_value=14),
    T=st.integers(min_value=8, max_value=45),
    keep=st.floats(min_value=0.6, max_value=1.0),
    m=st.integers(min_value=2, max_value=4),
    k=st.integers(min_value=2, max_value=7),
    eps=st.floats(min_value=2.0, max_value=12.0),
    delta_factor=st.floats(min_value=0.02, max_value=1.4),
    lam=st.integers(min_value=1, max_value=12),
    variant=st.sampled_from(["cuts", "cuts+", "cuts*"]),
)
def test_cuts_equals_cmc(seed, n, T, keep, m, k, eps, delta_factor, lam, variant):
    db = build_database(seed, n, T, keep)
    exact = normalize_convoys(cmc(db, m, k, eps))
    result = cuts(
        db, m, k, eps, delta=eps * delta_factor, lam=lam, variant=variant
    )
    assert convoy_sets_equal(exact, result.convoys)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    m=st.integers(min_value=2, max_value=3),
    k=st.integers(min_value=2, max_value=6),
    eps=st.floats(min_value=2.0, max_value=10.0),
)
def test_all_reported_convoys_are_valid(seed, m, k, eps):
    """Soundness against Definition 3, independent of CMC."""
    db = build_database(seed, 10, 30, 0.85)
    result = cuts(db, m, k, eps, variant="cuts*")
    for convoy in result.convoys:
        assert is_valid_convoy(db, convoy, m, k, eps)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    variant=st.sampled_from(["cuts", "cuts+", "cuts*"]),
)
def test_variants_agree_with_each_other(seed, variant):
    db = build_database(seed, 8, 25, 0.8)
    reference = cuts(db, 2, 3, 5.0, delta=2.0, lam=3, variant="cuts")
    other = cuts(db, 2, 3, 5.0, delta=1.0, lam=5, variant=variant)
    assert convoy_sets_equal(reference.convoys, other.convoys)


class TestPaperSemanticsEquivalence:
    """Under the published (incomplete) semantics the filter-refinement
    pipeline is NOT guaranteed to reproduce CMC — the reproduction keeps a
    regression case demonstrating the published rule's incompleteness."""

    def test_known_divergence_example(self):
        # c joins {a, b} mid-stream: paper-CMC never tracks {a,b,c}.
        db = TrajectoryDatabase(
            [
                Trajectory("a", [(0, 0, t) for t in range(15)]),
                Trajectory("b", [(0, 1, t) for t in range(15)]),
                Trajectory(
                    "c",
                    [(0, 100, t) for t in range(5)]
                    + [(0.5, 0.5, t) for t in range(5, 15)],
                ),
            ]
        )
        complete = normalize_convoys(cmc(db, 2, 5, 2.0))
        published = normalize_convoys(cmc(db, 2, 5, 2.0, paper_semantics=True))
        assert len(complete) > len(published)
