"""Cross-module property tests (hypothesis).

These pin the structural invariants that the per-module unit tests state
only by example: simplification soundness end-to-end, the CMC result
contract (validity, maximal runs, no overlapping duplicates of the same
set), and the coherence of the derived query helpers.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cmc import cmc
from repro.core.queries import (
    convoy_timeline,
    participation_totals,
    summarize,
    top_convoys,
)
from repro.core.verification import is_valid_convoy, normalize_convoys
from repro.geometry.distance import point_distance
from repro.simplification import SIMPLIFIERS
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def build_database(seed, n=8, T=25, keep=0.85):
    rng = random.Random(seed)
    trajs = []
    for i in range(n):
        a = rng.randint(0, T // 2)
        b = rng.randint(a + 3, T)
        pts = []
        x, y = rng.uniform(0, 35), rng.uniform(0, 35)
        for t in range(a, b + 1):
            x += rng.uniform(-2, 2)
            y += rng.uniform(-2, 2)
            if rng.random() < keep or t in (a, b):
                pts.append((x, y, t))
        trajs.append(Trajectory(f"o{i}", pts))
    return TrajectoryDatabase(trajs)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=5000),
    method=st.sampled_from(["dp", "dp+", "dp*"]),
    delta=st.floats(min_value=0.0, max_value=8.0),
)
def test_simplified_trajectory_stays_within_delta_at_every_time(
    seed, method, delta
):
    """End-to-end Definition 4: at every *time point* (not just samples),
    the original interpolated location is within δ of the covering
    simplified segment — the property that makes Lemmas 1-3 true for the
    virtual points CMC clusters."""
    db = build_database(seed, n=3)
    simplifier = SIMPLIFIERS[method]
    for trajectory in db:
        simplified = simplifier(trajectory, delta)
        for t in range(trajectory.start_time, trajectory.end_time + 1):
            location = trajectory.location_at(t)
            covering = [
                (seg, tol)
                for seg, tol in zip(simplified.segments, simplified.tolerances)
                if seg.covers_time(t)
            ]
            assert covering
            best = min(
                (
                    point_distance(location, seg.location_at(t))
                    if method == "dp*"
                    else seg.distance_to_point(location)
                )
                - tol
                for seg, tol in covering
            )
            assert best <= 1e-6


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=5000),
    m=st.integers(min_value=2, max_value=3),
    k=st.integers(min_value=2, max_value=6),
    eps=st.floats(min_value=2.0, max_value=9.0),
)
def test_cmc_result_contract(seed, m, k, eps):
    """Every reported convoy is valid, maximal in time (cannot be extended
    one step either way for the same object set), and the normalized
    result has no dominated entries."""
    db = build_database(seed)
    convoys = cmc(db, m, k, eps)
    normalized = normalize_convoys(convoys)
    for convoy in normalized:
        assert is_valid_convoy(db, convoy, m, k, eps)
        # Not extensible: the same set is not a valid convoy over an
        # interval extended by one time point in either direction.
        from repro.core.convoy import Convoy

        if convoy.t_start > db.min_time:
            extended = Convoy(
                convoy.objects, convoy.t_start - 1, convoy.t_end
            )
            assert not is_valid_convoy(db, extended, m, k, eps)
        if convoy.t_end < db.max_time:
            extended = Convoy(
                convoy.objects, convoy.t_start, convoy.t_end + 1
            )
            assert not is_valid_convoy(db, extended, m, k, eps)
    for i, a in enumerate(normalized):
        for j, b in enumerate(normalized):
            if i != j:
                assert not (a.dominates(b))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_query_helpers_are_coherent(seed):
    db = build_database(seed)
    convoys = normalize_convoys(cmc(db, 2, 3, 6.0))
    summary = summarize(convoys)
    assert summary["count"] == len(convoys)
    totals = participation_totals(convoys)
    assert sum(totals.values()) == sum(c.size * c.lifetime for c in convoys)
    timeline = convoy_timeline(convoys)
    if convoys:
        assert max(timeline.values()) <= len(convoys)
        assert sum(timeline.values()) == sum(c.lifetime for c in convoys)
        best = top_convoys(convoys, limit=1, by="mass")[0]
        assert best.size * best.lifetime == max(
            c.size * c.lifetime for c in convoys
        )
    else:
        assert timeline == {}


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    t_split=st.integers(min_value=5, max_value=20),
)
def test_cmc_time_restriction_consistency(seed, t_split):
    """Convoys wholly inside a window are found when CMC runs on just that
    window (restriction never invents or loses interior convoys)."""
    db = build_database(seed, T=25)
    # The generated database may start after t_split (every trajectory's
    # interval is random); clamp so the window is never reversed.
    t_split = max(t_split, db.min_time)
    full = normalize_convoys(cmc(db, 2, 3, 6.0))
    windowed = normalize_convoys(
        cmc(db, 2, 3, 6.0, time_range=(db.min_time, t_split))
    )
    for convoy in full:
        if convoy.t_end <= t_split:
            assert any(w.dominates(convoy) for w in windowed)
