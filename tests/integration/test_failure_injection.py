"""Failure-injection tests: malformed and adversarial inputs must fail
loudly at the API boundary (or be handled), never corrupt query answers."""

import math

import pytest

from repro import (
    Trajectory,
    TrajectoryDatabase,
    cmc,
    cuts,
    normalize_convoys,
)
from repro.core.convoy import Convoy
from repro.core.verification import is_valid_convoy


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


class TestMalformedTrajectories:
    def test_nan_coordinates_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Trajectory("o", [(math.nan, 0, 0), (1, 1, 1)])

    def test_inf_coordinates_rejected(self):
        with pytest.raises(ValueError):
            Trajectory("o", [(math.inf, 0, 0)])

    def test_fractional_time_rejected(self):
        with pytest.raises(ValueError):
            Trajectory("o", [(0, 0, 0.5)])

    def test_boolean_time_is_an_int(self):
        # bools are ints in Python; allowed but coerced sanely.
        tr = Trajectory("o", [(0, 0, False), (1, 1, True)])
        assert tr.tau == (0, 1)


class TestDegenerateDatabases:
    def test_all_single_point_trajectories(self):
        db = db_of(
            ("a", [(0, 0, 5)]),
            ("b", [(0.5, 0, 5)]),
            ("c", [(1.0, 0, 5)]),
        )
        # A convoy of lifetime 1 exists at t=5 with k=1.
        convoys = cmc(db, 3, 1, 2.0)
        assert convoys == [Convoy(["a", "b", "c"], 5, 5)]
        result = cuts(db, 3, 1, 2.0, delta=0.1, lam=1)
        assert result.convoys == convoys

    def test_stationary_objects(self):
        db = db_of(
            ("a", [(0, 0, t) for t in range(10)]),
            ("b", [(0.5, 0, t) for t in range(10)]),
        )
        convoys = cmc(db, 2, 5, 1.0)
        assert convoys == [Convoy(["a", "b"], 0, 9)]
        result = cuts(db, 2, 5, 1.0, variant="cuts*")
        assert result.convoys == convoys

    def test_identical_locations_all_objects(self):
        db = db_of(
            *(
                (f"o{i}", [(3.0, 4.0, t) for t in range(6)])
                for i in range(5)
            )
        )
        convoys = cmc(db, 5, 6, 0.5)
        assert len(convoys) == 1 and convoys[0].size == 5

    def test_huge_coordinates(self):
        base = 1e12
        db = db_of(
            ("a", [(base + t, base, t) for t in range(8)]),
            ("b", [(base + t, base + 1, t) for t in range(8)]),
        )
        convoys = cmc(db, 2, 4, 2.0)
        assert convoys == [Convoy(["a", "b"], 0, 7)]

    def test_negative_coordinates_and_times(self):
        db = db_of(
            ("a", [(-100 + t, -50, t) for t in range(-5, 5)]),
            ("b", [(-100 + t, -49, t) for t in range(-5, 5)]),
        )
        convoys = cmc(db, 2, 5, 2.0)
        assert convoys == [Convoy(["a", "b"], -5, 4)]
        result = cuts(db, 2, 5, 2.0, variant="cuts+")
        assert result.convoys == convoys

    def test_single_object_database(self):
        db = db_of(("a", [(t, 0, t) for t in range(10)]))
        assert cmc(db, 2, 3, 1.0) == []
        assert cuts(db, 2, 3, 1.0).convoys == []

    def test_m_one_every_object_is_a_convoy(self):
        db = db_of(
            ("a", [(0, 0, t) for t in range(5)]),
            ("b", [(100, 0, t) for t in range(5)]),
        )
        convoys = normalize_convoys(cmc(db, 1, 5, 1.0))
        assert len(convoys) == 2

    def test_k_longer_than_domain(self):
        db = db_of(
            ("a", [(0, 0, t) for t in range(5)]),
            ("b", [(0, 1, t) for t in range(5)]),
        )
        assert cmc(db, 2, 100, 2.0) == []
        assert cuts(db, 2, 100, 2.0, delta=0.1, lam=2).convoys == []


class TestAdversarialParameters:
    def test_tiny_eps(self):
        db = db_of(
            ("a", [(0, 0, t) for t in range(6)]),
            ("b", [(0, 0.5, t) for t in range(6)]),
        )
        assert cmc(db, 2, 3, 1e-9) == []

    def test_huge_eps_groups_everything(self):
        db = db_of(
            ("a", [(0, 0, t) for t in range(6)]),
            ("b", [(500, 0, t) for t in range(6)]),
        )
        convoys = cmc(db, 2, 6, 1e6)
        assert convoys == [Convoy(["a", "b"], 0, 5)]

    def test_zero_delta_cuts_still_exact(self):
        db = db_of(
            ("a", [(t, 0, t) for t in range(8)]),
            ("b", [(t, 1, t) for t in range(8)]),
        )
        exact = cmc(db, 2, 4, 2.0)
        result = cuts(db, 2, 4, 2.0, delta=0.0, lam=3)
        assert result.convoys == exact

    def test_lambda_exceeding_domain(self):
        db = db_of(
            ("a", [(t, 0, t) for t in range(8)]),
            ("b", [(t, 1, t) for t in range(8)]),
        )
        exact = cmc(db, 2, 4, 2.0)
        result = cuts(db, 2, 4, 2.0, delta=0.5, lam=10_000)
        assert result.convoys == exact

    def test_results_remain_valid_under_stress(self):
        import random

        rng = random.Random(99)
        trajs = []
        for i in range(8):
            pts = []
            x = y = 0.0
            # Extreme teleporting movement.
            for t in range(15):
                x += rng.uniform(-500, 500)
                y += rng.uniform(-500, 500)
                pts.append((x, y, t))
            trajs.append(Trajectory(f"o{i}", pts))
        db = TrajectoryDatabase(trajs)
        result = cuts(db, 2, 2, 50.0, variant="cuts*")
        for convoy in result.convoys:
            assert is_valid_convoy(db, convoy, 2, 2, 50.0)
