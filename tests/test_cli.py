"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


@pytest.fixture
def convoy_csv(tmp_path):
    db = TrajectoryDatabase(
        [
            Trajectory("a", [(t, 0.0, t) for t in range(20)]),
            Trajectory("b", [(t, 1.0, t) for t in range(20)]),
            Trajectory("c", [(t, 90.0, t) for t in range(20)]),
        ]
    )
    path = tmp_path / "in.csv"
    save_trajectories_csv(db, path)
    return path


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_requires_query_params(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "x.csv"])

    def test_algorithm_choices(self):
        args = build_parser().parse_args(
            ["discover", "x.csv", "-m", "2", "-k", "3", "-e", "1.5",
             "--algorithm", "cuts+"]
        )
        assert args.algorithm == "cuts+"


class TestDiscover:
    @pytest.mark.parametrize("algorithm", ["cmc", "cuts", "cuts+", "cuts*"])
    def test_finds_convoy(self, convoy_csv, algorithm):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--algorithm", algorithm]
        )
        assert code == 0
        assert "1 convoy(s)" in text
        assert "objects=a,b" in text

    def test_writes_output_csv(self, convoy_csv, tmp_path):
        out_path = tmp_path / "answer.csv"
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(out_path)]
        )
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert lines[0] == "t_start,t_end,size,objects"
        assert lines[1] == "0,19,2,a;b"

    def test_no_convoys(self, convoy_csv):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "3", "-k", "10", "-e", "2.0"]
        )
        assert code == 0
        assert "0 convoy(s)" in text

    def test_empty_input(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        code, text = run_cli(
            ["discover", str(empty), "-m", "2", "-k", "3", "-e", "1.0"]
        )
        assert code == 1

    def test_explicit_internal_params(self, convoy_csv):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--delta", "0.5", "--lam", "4"]
        )
        assert code == 0
        assert "1 convoy(s)" in text


class TestStream:
    def test_finds_convoy_in_csv(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0"]
        )
        assert code == 0
        assert "objects=a,b" in text
        assert "open at end of stream" in text  # convoy runs to the last tick
        assert "20 snapshot(s)" in text

    def test_streamed_answer_matches_discover(self, convoy_csv, tmp_path):
        stream_out = tmp_path / "stream.csv"
        discover_out = tmp_path / "discover.csv"
        run_cli(["stream", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--output", str(stream_out)])
        run_cli(["discover", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--algorithm", "cmc",
                 "--output", str(discover_out)])
        assert stream_out.read_text() == discover_out.read_text()

    def test_multi_convoy_answer_matches_discover(self, tmp_path):
        """Output parity holds when one convoy closes mid-stream (emitted
        first by the engine) and another runs to the final snapshot
        (emitted last, by the flush) — discovery order differs from
        discover's normalized order."""
        db = TrajectoryDatabase(
            [
                Trajectory("a", [(t, 0.0, t) for t in range(20)]),
                Trajectory("b", [(t, 1.0, t) for t in range(20)]),
                Trajectory("d", [(t, 40.0 if t < 10 else 40.0 + 5 * (t - 9), t)
                                 for t in range(20)]),
                Trajectory("e", [(t, 41.0, t) for t in range(20)]),
            ]
        )
        path = tmp_path / "multi.csv"
        save_trajectories_csv(db, path)
        stream_out = tmp_path / "stream.csv"
        discover_out = tmp_path / "discover.csv"
        code, text = run_cli(["stream", str(path), "-m", "2", "-k", "5",
                              "-e", "2.0", "--output", str(stream_out)])
        assert code == 0
        assert "closed at t=" in text  # d/e convoy died mid-stream
        assert "open at end of stream" in text  # a/b ran to the last tick
        run_cli(["discover", str(path), "-m", "2", "-k", "5", "-e", "2.0",
                 "--algorithm", "cmc", "--output", str(discover_out)])
        assert stream_out.read_text() == discover_out.read_text()

    def test_synthetic_source(self):
        code, text = run_cli(
            ["stream", "--synthetic", "30x15", "--seed", "2",
             "-m", "3", "-k", "5", "-e", "10.0", "--quiet"]
        )
        assert code == 0
        assert "15 snapshot(s)" in text
        assert "synthetic 30x15 (seed 2)" in text

    def test_incremental_flag_same_answer_plus_pass_report(self, convoy_csv,
                                                           tmp_path):
        base_out = tmp_path / "base.csv"
        inc_out = tmp_path / "inc.csv"
        code, base_text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(base_out)]
        )
        assert code == 0
        assert "incremental clustering:" not in base_text
        code, inc_text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--incremental", "--output", str(inc_out)]
        )
        assert code == 0
        assert "incremental clustering:" in inc_text
        assert "objects=a,b" in inc_text
        assert inc_out.read_text() == base_out.read_text()

    def test_incremental_reports_candidate_splicing(self, convoy_csv,
                                                    tmp_path):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--incremental"]
        )
        assert code == 0
        assert "candidate tracking:" in text
        assert "spliced" in text

    def test_churn_threshold_flag(self, convoy_csv, tmp_path):
        base_out = tmp_path / "base.csv"
        tuned_out = tmp_path / "tuned.csv"
        code, _ = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(base_out)]
        )
        assert code == 0
        for value, out_path in (("0.9", tuned_out), ("adaptive", tuned_out)):
            code, text = run_cli(
                ["stream", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--incremental", "--churn-threshold", value,
                 "--output", str(out_path)]
            )
            assert code == 0, text
            assert out_path.read_text() == base_out.read_text()

    def test_churn_threshold_requires_incremental(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--churn-threshold", "0.5"]
        )
        assert code == 2
        assert "--incremental" in text

    def test_churn_threshold_rejects_bad_values(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--incremental", "--churn-threshold", "banana"]
        )
        assert code == 2
        assert "bad --churn-threshold" in text
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--incremental", "--churn-threshold", "1.5"]
        )
        assert code == 2
        assert "bad query parameters" in text

    def test_requires_exactly_one_input(self, convoy_csv):
        code, _ = run_cli(["stream", "-m", "2", "-k", "5", "-e", "1.0"])
        assert code == 2
        code, _ = run_cli(
            ["stream", str(convoy_csv), "--synthetic", "5x5",
             "-m", "2", "-k", "5", "-e", "1.0"]
        )
        assert code == 2

    def test_rejects_window_below_k(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--window", "3"]
        )
        assert code == 2
        assert "bad query parameters" in text

    def test_rejects_malformed_synthetic_shape(self):
        code, text = run_cli(
            ["stream", "--synthetic", "banana", "-m", "2", "-k", "5",
             "-e", "1.0"]
        )
        assert code == 2
        assert "bad --synthetic" in text

    def test_window_flag(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--window", "8"]
        )
        assert code == 0
        assert "closed at t=" in text  # fragments close mid-stream

    def test_jittered_synthetic_with_lateness_matches_in_order(self,
                                                               tmp_path):
        in_order = tmp_path / "in_order.csv"
        reordered = tmp_path / "reordered.csv"
        code, _ = run_cli(
            ["stream", "--synthetic", "40x25", "--seed", "3", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--output", str(in_order)]
        )
        assert code == 0
        code, text = run_cli(
            ["stream", "--synthetic", "40x25", "--seed", "3", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--jitter", "4",
             "--allowed-lateness", "4", "--output", str(reordered)]
        )
        assert code == 0, text
        assert "reorder buffer:" in text
        assert "jitter 4" in text
        assert reordered.read_text() == in_order.read_text()

    def test_allowed_lateness_reports_buffer_stats(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--allowed-lateness", "2", "--quiet"]
        )
        assert code == 0
        assert "reorder buffer:" in text
        assert "late dropped" in text

    def test_max_pending_alone_enables_the_buffer(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--max-pending", "4", "--quiet"]
        )
        assert code == 0
        assert "reorder buffer:" in text

    def test_jitter_requires_synthetic(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--jitter", "3"]
        )
        assert code == 2
        assert "--synthetic" in text

    def test_jitter_requires_a_reorder_buffer(self):
        code, text = run_cli(
            ["stream", "--synthetic", "20x10", "-m", "3", "-k", "5",
             "-e", "10.0", "--jitter", "3"]
        )
        assert code == 2
        assert "--allowed-lateness" in text

    def test_late_policy_requires_a_reorder_buffer(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--late-policy", "drop"]
        )
        assert code == 2
        assert "--allowed-lateness" in text

    def test_late_policy_drop_reports_dropped_count(self):
        # Jitter 5 against lateness 1 guarantees genuinely late arrivals.
        code, text = run_cli(
            ["stream", "--synthetic", "40x25", "--seed", "5", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--jitter", "5",
             "--allowed-lateness", "1", "--late-policy", "drop"]
        )
        assert code == 0
        assert "reorder buffer:" in text
        assert " late dropped" in text
        dropped = int(text.split(" late dropped")[0].rsplit(", ", 1)[-1])
        assert dropped > 0

    def test_late_raise_is_reported_as_stream_error(self):
        code, text = run_cli(
            ["stream", "--synthetic", "40x25", "--seed", "5", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--jitter", "5",
             "--allowed-lateness", "1"]
        )
        assert code == 1
        assert "stream error:" in text
        assert "late snapshot" in text

    def test_rejects_negative_jitter(self):
        code, text = run_cli(
            ["stream", "--synthetic", "20x10", "-m", "3", "-k", "5",
             "-e", "10.0", "--jitter", "-2", "--allowed-lateness", "2"]
        )
        assert code == 2
        assert "bad --jitter" in text

    def test_rejects_bad_reorder_parameters(self):
        code, text = run_cli(
            ["stream", "--synthetic", "20x10", "-m", "3", "-k", "5",
             "-e", "10.0", "--allowed-lateness", "-1"]
        )
        assert code == 2
        assert "bad query parameters" in text

    def test_rejects_amend_with_max_pending_only(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--max-pending", "10", "--late-policy", "amend"]
        )
        assert code == 2
        assert "bad query parameters" in text
        assert "allowed_lateness" in text


class TestStreamSharding:
    @pytest.mark.parametrize("executor", [None, "thread"])
    def test_sharded_answer_matches_unsharded(self, convoy_csv, tmp_path,
                                              executor):
        base_out = tmp_path / "base.csv"
        sharded_out = tmp_path / "sharded.csv"
        code, _ = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(base_out)]
        )
        assert code == 0
        argv = ["stream", str(convoy_csv), "-m", "2", "-k", "10",
                "-e", "2.0", "--shards", "3", "--output", str(sharded_out)]
        if executor is not None:
            argv += ["--executor", executor]
        code, text = run_cli(argv)
        assert code == 0, text
        assert "sharding:" in text
        assert "3 shard(s)" in text
        assert sharded_out.read_text() == base_out.read_text()

    def test_executor_requires_shards(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--executor", "thread"]
        )
        assert code == 2
        assert "--shards" in text

    def test_rejects_bad_shard_count(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--shards", "0"]
        )
        assert code == 2
        assert "bad query parameters" in text

    def test_unsharded_run_prints_no_sharding_line(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0"]
        )
        assert code == 0
        assert "sharding:" not in text

    @pytest.mark.parametrize("executor", [None, "process"])
    def test_resident_answer_matches_unsharded(self, convoy_csv, tmp_path,
                                               executor):
        """Resident mode through the CLI: identical convoys, the
        resident marker in the sharding summary, and the flag recorded
        in the JSON params."""
        base_out = tmp_path / "base.csv"
        resident_out = tmp_path / "resident.csv"
        json_out = tmp_path / "resident.json"
        code, _ = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(base_out)]
        )
        assert code == 0
        argv = ["stream", str(convoy_csv), "-m", "2", "-k", "10",
                "-e", "2.0", "--shards", "3", "--resident",
                "--output", str(resident_out), "--json", str(json_out)]
        if executor is not None:
            argv += ["--executor", executor]
        code, text = run_cli(argv)
        assert code == 0, text
        assert "sharding:" in text
        assert "resident" in text
        assert resident_out.read_text() == base_out.read_text()
        with open(json_out) as handle:
            payload = json.load(handle)
        assert payload["params"]["resident"] is True
        assert payload["counters"]["resident_inits"] >= 1

    def test_resident_requires_shards(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "5", "-e", "2.0",
             "--resident"]
        )
        assert code == 2
        assert "--shards" in text


class TestStreamJson:
    def test_round_trip_matches_csv_answer(self, convoy_csv, tmp_path):
        """The JSON artifact carries exactly the normalized CSV answer
        plus the full counters dict."""
        csv_out = tmp_path / "answer.csv"
        json_out = tmp_path / "answer.json"
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(csv_out), "--json", str(json_out)]
        )
        assert code == 0
        assert f"json answer written to {json_out}" in text
        with open(json_out) as handle:
            payload = json.load(handle)
        assert set(payload) >= {"params", "convoys", "counters",
                                "elapsed_seconds"}
        assert payload["params"] == {
            "m": 2, "k": 10, "eps": 2.0, "paper_semantics": False,
            "window": None, "shards": None, "executor": None,
            "backend": "python", "match_kernel": None, "resident": False,
        }
        # Round trip: rebuild the CSV rows from the JSON convoys.
        rebuilt = ["t_start,t_end,size,objects"]
        for convoy in payload["convoys"]:
            members = ";".join(convoy["objects"])
            rebuilt.append(
                f"{convoy['t_start']},{convoy['t_end']},"
                f"{len(convoy['objects'])},{members}"
            )
        assert csv_out.read_text().splitlines() == rebuilt
        # The counters are the miner's full shared dict.
        assert payload["counters"]["snapshots"] == 20
        assert payload["counters"]["convoys_emitted"] == 1

    def test_json_includes_reorder_and_shard_counters(self, tmp_path):
        json_out = tmp_path / "sharded.json"
        code, _text = run_cli(
            ["stream", "--synthetic", "40x20", "--seed", "3", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--jitter", "3",
             "--allowed-lateness", "3", "--shards", "2", "--executor",
             "serial", "--incremental", "--json", str(json_out)]
        )
        assert code == 0
        with open(json_out) as handle:
            payload = json.load(handle)
        counters = payload["counters"]
        # Reorder, shard, tracker, and engine keys all in one dict.
        for key in ("reordered_snapshots", "late_dropped", "peak_pending",
                    "shard_steps", "sharded_candidates", "max_shard_batch",
                    "spliced_candidates", "snapshots"):
            assert key in counters, key
        assert payload["params"]["shards"] == 2
        assert payload["params"]["executor"] == "serial"
        assert counters["sharded_candidates"] >= 0
        assert "clusterer_counters" in payload
        assert payload["clusterer_counters"]["incremental_passes"] >= 0

    def test_json_convoys_match_across_sharding(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path, extra in ((a, []), (b, ["--shards", "4"])):
            code, _ = run_cli(
                ["stream", "--synthetic", "50x20", "--seed", "1",
                 "-m", "3", "-k", "5", "-e", "10.0", "--quiet",
                 "--json", str(path)] + extra
            )
            assert code == 0
        with open(a) as handle:
            plain = json.load(handle)
        with open(b) as handle:
            sharded = json.load(handle)
        assert plain["convoys"] == sharded["convoys"]


class TestStats:
    def test_table3_style_output(self, convoy_csv):
        code, text = run_cli(["stats", str(convoy_csv)])
        assert code == 0
        assert "objects (N):            3" in text
        assert "time domain length (T): 20" in text
        assert "data size (points):     60" in text


class TestSimplify:
    def test_reduces_points(self, convoy_csv, tmp_path):
        out_path = tmp_path / "reduced.csv"
        code, text = run_cli(
            ["simplify", str(convoy_csv), str(out_path),
             "--method", "dp", "--delta", "0.5"]
        )
        assert code == 0
        assert "reduction" in text
        reduced = load_trajectories_csv(out_path)
        assert reduced.total_points < 60
        # Endpoints survive, so the time domain is intact.
        assert reduced.min_time == 0 and reduced.max_time == 19

    @pytest.mark.parametrize("method", ["dp", "dp+", "dp*"])
    def test_all_methods(self, convoy_csv, tmp_path, method):
        out_path = tmp_path / f"{method.replace('*', 'star')}.csv"
        code, _ = run_cli(
            ["simplify", str(convoy_csv), str(out_path),
             "--method", method, "--delta", "1.0"]
        )
        assert code == 0
        assert out_path.exists()


class TestGenerate:
    def test_generate_taxi(self, tmp_path):
        out_path = tmp_path / "taxi.csv"
        code, text = run_cli(
            ["generate", "taxi", str(out_path), "--scale", "0.1"]
        )
        assert code == 0
        assert "500 objects" in text
        db = load_trajectories_csv(out_path)
        assert len(db) == 500

    def test_generate_respects_seed(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        run_cli(["generate", "cattle", str(a), "--scale", "0.002", "--seed", "5"])
        run_cli(["generate", "cattle", str(b), "--scale", "0.002", "--seed", "5"])
        assert a.read_text() == b.read_text()


class TestStreamBackend:
    @pytest.mark.parametrize("backend", ["python", "vector"])
    def test_backends_print_identical_convoys(self, convoy_csv, backend):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--backend", backend]
        )
        assert code == 0
        assert "1 convoy(s) from 20 snapshot(s)" in text
        assert "objects=a,b" in text

    def test_backend_threads_into_incremental_and_shards(self, tmp_path):
        json_out = tmp_path / "vec.json"
        code, _text = run_cli(
            ["stream", "--synthetic", "40x20", "--seed", "3", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--incremental",
             "--shards", "2", "--backend", "vector", "--json",
             str(json_out)]
        )
        assert code == 0
        with open(json_out) as handle:
            assert json.load(handle)["params"]["backend"] == "vector"

    def test_rejects_unknown_backend(self, convoy_csv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--backend", "fortran"]
            )


class TestStreamRateReporting:
    def test_sub_resolution_elapsed_omits_rate(self, convoy_csv, monkeypatch):
        """A run finishing below the timer's resolution must not print
        'inf snapshots/s' — the rate is omitted, the count stays."""
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module.time, "perf_counter", lambda: 42.0)
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--quiet"]
        )
        assert code == 0
        assert "inf" not in text
        assert "snapshots/s" not in text
        assert "1 convoy(s) from 20 snapshot(s)" in text

    def test_measurable_elapsed_prints_rate(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--quiet"]
        )
        assert code == 0
        assert "snapshots/s" in text
        assert "inf" not in text


class TestStreamStore:
    def test_store_round_trips_through_query(self, convoy_csv, tmp_path):
        db = tmp_path / "convoys.db"
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--quiet", "--store", str(db)]
        )
        assert code == 0
        assert "store: 1 convoy(s) stored, 0 replayed" in text
        code, text = run_cli(["query", str(db), "--alive", "0:15", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["count"] == 1
        assert payload["store_count"] == 1
        (convoy,) = payload["convoys"]
        assert convoy["objects"] == ["a", "b"]
        assert convoy["t_start"] == 0
        assert convoy["t_end"] == 19
        assert convoy["bbox"] is not None

    def test_rerun_replays_idempotently(self, convoy_csv, tmp_path):
        db = tmp_path / "convoys.db"
        argv = ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e",
                "2.0", "--quiet", "--store", str(db)]
        assert run_cli(argv)[0] == 0
        code, text = run_cli(argv)
        assert code == 0
        assert "store: 0 convoy(s) stored, 1 replayed" in text

    def test_store_composes_with_sharding(self, tmp_path):
        db = tmp_path / "convoys.db"
        code, text = run_cli(
            ["stream", "--synthetic", "40x20", "--seed", "3", "-m", "3",
             "-k", "5", "-e", "10.0", "--quiet", "--shards", "2",
             "--store", str(db)]
        )
        assert code == 0
        assert "stored" in text
        code, text = run_cli([
            "query", str(db), "--top-k", "3", "--by", "duration"])
        assert code == 0
        assert "convoy(s) matched" in text


class TestStreamMatchKernel:
    def test_rejects_unknown_kernel(self, convoy_csv, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli(["stream", str(convoy_csv), "-m", "2", "-k", "10",
                     "-e", "2.0", "--match-kernel", "turbo"])
        assert exc.value.code == 2  # argparse choices reject it up front

    def test_every_kernel_matches_default_answer(self, convoy_csv, tmp_path):
        base = tmp_path / "base.csv"
        run_cli(["stream", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--output", str(base)])
        for kernel in ("scalar", "merge", "bitset", "auto"):
            out = tmp_path / f"{kernel}.csv"
            code, text = run_cli(
                ["stream", str(convoy_csv), "-m", "2", "-k", "10",
                 "-e", "2.0", "--match-kernel", kernel,
                 "--output", str(out)]
            )
            assert code == 0, text
            assert out.read_text() == base.read_text()

    def test_auto_reports_dispatch_summary(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--match-kernel", "auto"]
        )
        assert code == 0
        assert "match kernel dispatch:" in text

    def test_fixed_kernel_has_no_dispatch_summary(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--match-kernel", "bitset"]
        )
        assert code == 0
        assert "match kernel dispatch:" not in text

    def test_vector_backend_notes_numpy_fallback(self, convoy_csv,
                                                 monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "have_numpy", lambda: False)
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--backend", "vector"]
        )
        assert code == 0
        assert "memoryview fallback" in text

    def test_vector_backend_with_numpy_has_no_fallback_note(self, convoy_csv,
                                                            monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "have_numpy", lambda: True)
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--backend", "vector"]
        )
        assert code == 0
        assert "fallback kernels" not in text

    def test_python_backend_never_notes_fallback(self, convoy_csv,
                                                 monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "have_numpy", lambda: False)
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0"]
        )
        assert code == 0
        assert "fallback kernels" not in text


class TestQuery:
    @pytest.fixture
    def store_db(self, convoy_csv, tmp_path):
        db = tmp_path / "convoys.db"
        code, _ = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--quiet", "--store", str(db)]
        )
        assert code == 0
        return db

    def test_text_output(self, store_db):
        code, text = run_cli(["query", str(store_db), "--alive", "0:5"])
        assert code == 0
        assert "t=[0,19] objects=a,b bbox=" in text
        assert "1 convoy(s) matched (store holds 1" in text

    def test_containing_matches_both_id_types(self, store_db, tmp_path):
        from repro.core.convoy import Convoy
        from repro.store import open_store

        with open_store(store_db) as store:
            store.add(Convoy({5, "x"}, 0, 4))
            store.add(Convoy({"5", "y"}, 1, 6))
        code, text = run_cli(["query", str(store_db), "--containing", "5",
                              "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["count"] == 2
        code, text = run_cli(["query", str(store_db), "--containing", "x"])
        assert code == 0
        assert "1 convoy(s) matched" in text

    def test_containing_miss_is_empty_not_an_error(self, store_db):
        code, text = run_cli(["query", str(store_db), "--containing", "zz"])
        assert code == 0
        assert "0 convoy(s) matched" in text

    def test_intersecting(self, store_db):
        code, text = run_cli(
            ["query", str(store_db), "--intersecting", "0:0:5:25"])
        assert code == 0
        assert "1 convoy(s) matched" in text
        code, text = run_cli(
            ["query", str(store_db), "--intersecting", "50:50:60:60"])
        assert code == 0
        assert "0 convoy(s) matched" in text

    def test_top_k_composes_with_alive(self, store_db):
        code, text = run_cli(
            ["query", str(store_db), "--alive", "0:5", "--top-k", "1",
             "--by", "size", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["query"]["top_k"] == 1
        assert payload["query"]["by"] == "size"
        assert payload["count"] == 1

    def test_missing_store_is_an_error(self, tmp_path):
        missing = tmp_path / "nope.db"
        code, text = run_cli(["query", str(missing), "--alive", "0:5"])
        assert code == 2
        assert "no such store" in text
        assert not missing.exists()  # the query must not create it

    def test_mode_validation(self, store_db):
        code, text = run_cli(["query", str(store_db)])
        assert code == 2
        assert "at least one of" in text
        code, text = run_cli(["query", str(store_db), "--alive", "0:5",
                              "--containing", "a"])
        assert code == 2
        assert "pick one of" in text
        code, text = run_cli(["query", str(store_db), "--containing", "a",
                              "--top-k", "2"])
        assert code == 2
        assert "--top-k only composes with --alive" in text
        code, text = run_cli(["query", str(store_db), "--top-k", "0"])
        assert code == 2
        assert "bad --top-k" in text

    def test_window_and_box_validation(self, store_db):
        code, text = run_cli(["query", str(store_db), "--alive", "9:2"])
        assert code == 2
        assert "reversed" in text
        code, text = run_cli(["query", str(store_db), "--alive", "abc"])
        assert code == 2
        assert "bad query window/box" in text
        code, text = run_cli(
            ["query", str(store_db), "--intersecting", "1:2:3"])
        assert code == 2
        assert "bad query window/box" in text

    def test_box_corners_any_order(self, store_db):
        code_a, text_a = run_cli(
            ["query", str(store_db), "--intersecting", "5:25:0:0"])
        code_b, text_b = run_cli(
            ["query", str(store_db), "--intersecting", "0:0:5:25"])
        assert code_a == code_b == 0
        assert text_a == text_b


class TestServe:
    def test_rejects_bad_workers(self):
        code, text = run_cli(["serve", "--workers", "0"])
        assert code == 2
        assert "bad --workers value" in text

    def test_rejects_bad_max_queue(self):
        code, text = run_cli(["serve", "--max-queue", "0"])
        assert code == 2
        assert "bad --max-queue value" in text

    def test_stream_rejects_negative_pace(self, convoy_csv):
        code, text = run_cli(
            ["stream", str(convoy_csv), "-m", "2", "-k", "3", "-e", "2.0",
             "--pace", "-0.5"]
        )
        assert code == 2
        assert "bad --pace value" in text
