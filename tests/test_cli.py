"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.io.csv_io import load_trajectories_csv, save_trajectories_csv
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


@pytest.fixture
def convoy_csv(tmp_path):
    db = TrajectoryDatabase(
        [
            Trajectory("a", [(t, 0.0, t) for t in range(20)]),
            Trajectory("b", [(t, 1.0, t) for t in range(20)]),
            Trajectory("c", [(t, 90.0, t) for t in range(20)]),
        ]
    )
    path = tmp_path / "in.csv"
    save_trajectories_csv(db, path)
    return path


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_requires_query_params(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "x.csv"])

    def test_algorithm_choices(self):
        args = build_parser().parse_args(
            ["discover", "x.csv", "-m", "2", "-k", "3", "-e", "1.5",
             "--algorithm", "cuts+"]
        )
        assert args.algorithm == "cuts+"


class TestDiscover:
    @pytest.mark.parametrize("algorithm", ["cmc", "cuts", "cuts+", "cuts*"])
    def test_finds_convoy(self, convoy_csv, algorithm):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--algorithm", algorithm]
        )
        assert code == 0
        assert "1 convoy(s)" in text
        assert "objects=a,b" in text

    def test_writes_output_csv(self, convoy_csv, tmp_path):
        out_path = tmp_path / "answer.csv"
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--output", str(out_path)]
        )
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert lines[0] == "t_start,t_end,size,objects"
        assert lines[1] == "0,19,2,a;b"

    def test_no_convoys(self, convoy_csv):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "3", "-k", "10", "-e", "2.0"]
        )
        assert code == 0
        assert "0 convoy(s)" in text

    def test_empty_input(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        code, text = run_cli(
            ["discover", str(empty), "-m", "2", "-k", "3", "-e", "1.0"]
        )
        assert code == 1

    def test_explicit_internal_params(self, convoy_csv):
        code, text = run_cli(
            ["discover", str(convoy_csv), "-m", "2", "-k", "10", "-e", "2.0",
             "--delta", "0.5", "--lam", "4"]
        )
        assert code == 0
        assert "1 convoy(s)" in text


class TestStats:
    def test_table3_style_output(self, convoy_csv):
        code, text = run_cli(["stats", str(convoy_csv)])
        assert code == 0
        assert "objects (N):            3" in text
        assert "time domain length (T): 20" in text
        assert "data size (points):     60" in text


class TestSimplify:
    def test_reduces_points(self, convoy_csv, tmp_path):
        out_path = tmp_path / "reduced.csv"
        code, text = run_cli(
            ["simplify", str(convoy_csv), str(out_path),
             "--method", "dp", "--delta", "0.5"]
        )
        assert code == 0
        assert "reduction" in text
        reduced = load_trajectories_csv(out_path)
        assert reduced.total_points < 60
        # Endpoints survive, so the time domain is intact.
        assert reduced.min_time == 0 and reduced.max_time == 19

    @pytest.mark.parametrize("method", ["dp", "dp+", "dp*"])
    def test_all_methods(self, convoy_csv, tmp_path, method):
        out_path = tmp_path / f"{method.replace('*', 'star')}.csv"
        code, _ = run_cli(
            ["simplify", str(convoy_csv), str(out_path),
             "--method", method, "--delta", "1.0"]
        )
        assert code == 0
        assert out_path.exists()


class TestGenerate:
    def test_generate_taxi(self, tmp_path):
        out_path = tmp_path / "taxi.csv"
        code, text = run_cli(
            ["generate", "taxi", str(out_path), "--scale", "0.1"]
        )
        assert code == 0
        assert "500 objects" in text
        db = load_trajectories_csv(out_path)
        assert len(db) == 500

    def test_generate_respects_seed(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        run_cli(["generate", "cattle", str(a), "--scale", "0.002", "--seed", "5"])
        run_cli(["generate", "cattle", str(b), "--scale", "0.002", "--seed", "5"])
        assert a.read_text() == b.read_text()
