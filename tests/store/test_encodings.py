"""Canonical store encodings: exact round-trips, deterministic identity.

The store's whole bit-for-bit contract rests on these small functions —
object ids must survive the storage boundary with their Python type
intact, member-set text must be unambiguous for *any* legal id (including
ids containing commas, quotes, or JSON-looking text), and the identity /
rank keys must be deterministic so the idempotent upsert and the ranked
enumeration both have a single canonical answer.
"""

import json

import pytest

from repro.core.convoy import Convoy
from repro.store import (
    TOP_K_KEYS,
    convoy_identity,
    decode_object_id,
    encode_members,
    encode_object_id,
    rank_key,
)
from repro.store.base import row_to_convoy


class TestObjectIdEncoding:
    @pytest.mark.parametrize("object_id", [
        "a", "", "o,b", 'x"y', "[1,2]", "null", "5", 0, 5, -17, 10**40,
        "héllo\n\t", "\\\"", ":"
    ])
    def test_round_trips_exactly(self, object_id):
        encoded = encode_object_id(object_id)
        decoded = decode_object_id(encoded)
        assert decoded == object_id
        assert type(decoded) is type(object_id)

    def test_int_and_str_stay_distinct(self):
        assert encode_object_id(5) != encode_object_id("5")

    @pytest.mark.parametrize("bad", [True, False, 1.5, None, (1,), b"a"])
    def test_rejects_non_json_exact_types(self, bad):
        with pytest.raises(TypeError, match="must be str or int"):
            encode_object_id(bad)


class TestMemberEncoding:
    def test_is_valid_json_and_order_free(self):
        text = encode_members(["b", "a", "c"])
        assert text == encode_members(["c", "a", "b"])
        assert json.loads(text) == ["a", "b", "c"]

    def test_adversarial_ids_stay_unambiguous(self):
        # A comma-joined naive encoding would confuse these two sets.
        members_one = {"a,b"}
        members_two = {"a", "b"}
        assert encode_members(members_one) != encode_members(members_two)
        assert json.loads(encode_members(members_one)) == ["a,b"]

    def test_mixed_types_sort_deterministically(self):
        text = encode_members([3, "a", 1, "b"])
        assert json.loads(text) == json.loads(encode_members(["b", 1, "a", 3]))


class TestConvoyIdentity:
    def test_identity_is_interval_plus_members(self):
        convoy = Convoy({"a", "b"}, 3, 9)
        assert convoy_identity(convoy) == '3:9:["a","b"]'

    def test_equal_convoys_share_identity(self):
        assert convoy_identity(Convoy({"b", "a"}, 0, 4)) == \
            convoy_identity(Convoy({"a", "b"}, 0, 4))

    def test_distinct_in_every_dimension(self):
        base = Convoy({"a", "b"}, 0, 4)
        for other in (Convoy({"a", "b"}, 1, 4), Convoy({"a", "b"}, 0, 5),
                      Convoy({"a", "c"}, 0, 4)):
            assert convoy_identity(other) != convoy_identity(base)


class TestRowToConvoy:
    def test_rebuilds_the_mined_convoy(self):
        convoy = Convoy({"a", 5, "x,y"}, 2, 8)
        rebuilt = row_to_convoy(2, 8, encode_members(convoy.objects))
        assert rebuilt == convoy
        assert {type(o) for o in rebuilt.objects} == {str, int}


class TestRankKey:
    def test_size_then_duration(self):
        big = Convoy({"a", "b", "c"}, 0, 3)
        small_long = Convoy({"a", "b"}, 0, 9)
        assert rank_key(big, "size") < rank_key(small_long, "size")
        assert rank_key(small_long, "duration") < rank_key(big, "duration")

    def test_ties_break_on_canonical_interval_order(self):
        first = Convoy({"a", "b"}, 0, 4)
        second = Convoy({"c", "d"}, 1, 5)
        for by in TOP_K_KEYS:
            assert rank_key(first, by) < rank_key(second, by)

    def test_rejects_unknown_dimension(self):
        with pytest.raises(ValueError, match="size.*duration"):
            rank_key(Convoy({"a", "b"}, 0, 4), "area")
