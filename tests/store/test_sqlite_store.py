"""Unit suite for the SQLite :class:`ConvoyStore` backend.

Every indexed query is held equal to a brute-force in-memory answer over
a seeded random population — ``alive_in`` additionally against its own
``force_scan=True`` plan (same SQL predicate, indexes disabled), which
is the equality the benchmark's speedup claim rests on.  The suite also
pins the operational contract: idempotent upserts, one-transaction
batches that roll back atomically, persistence across reopen, the
schema-version guard, and the planner actually *using* the accelerator
indexes (``EXPLAIN QUERY PLAN``, so an index regression fails a test
instead of a benchmark).
"""

import random

import pytest

from repro.core.convoy import Convoy
from repro.geometry.bbox import BoundingBox
from repro.store import (
    SCHEMA_VERSION,
    SQLiteConvoyStore,
    convoy_identity,
    open_store,
    rank_key,
)


def make_population(seed, n, with_boxes=True):
    """A seeded random convoy population with distinct identities."""
    rng = random.Random(seed)
    convoys, bboxes, seen = [], [], set()
    while len(convoys) < n:
        t_start = rng.randrange(0, 400)
        t_end = t_start + rng.randrange(0, 60)
        size = rng.randrange(2, 7)
        ids = rng.sample(range(100), size)
        if rng.random() < 0.3:
            ids = [f"o{i}" for i in ids]
        convoy = Convoy(ids, t_start, t_end)
        if convoy_identity(convoy) in seen:
            continue
        seen.add(convoy_identity(convoy))
        convoys.append(convoy)
        if with_boxes and rng.random() < 0.9:
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            bboxes.append(BoundingBox(x, y, x + rng.uniform(0, 80),
                                      y + rng.uniform(0, 80)))
        else:
            bboxes.append(None)
    return convoys, bboxes


def canonical(convoys):
    """The (t_start, t_end, identity) order every list query returns."""
    return sorted(convoys, key=lambda c: (c.t_start, c.t_end,
                                          convoy_identity(c)))


@pytest.fixture
def population():
    return make_population(seed=11, n=120)


@pytest.fixture
def store(tmp_path, population):
    convoys, bboxes = population
    with SQLiteConvoyStore(tmp_path / "convoys.db") as s:
        assert s.add_batch(convoys, bboxes) == len(convoys)
        yield s


class TestWrites:
    def test_add_is_idempotent(self, tmp_path):
        convoy = Convoy({"a", "b"}, 0, 4)
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            assert store.add(convoy) is True
            assert store.add(convoy) is False
            assert store.add(Convoy({"b", "a"}, 0, 4)) is False
            assert store.count() == 1

    def test_add_batch_counts_only_new_rows(self, store, population):
        convoys, bboxes = population
        assert store.add_batch(convoys, bboxes) == 0
        assert store.count() == len(convoys)

    def test_replay_does_not_overwrite_bbox(self, tmp_path):
        # First write wins: a replayed emission (same identity) must not
        # clobber the stored row, bbox included.
        convoy = Convoy({"a", "b"}, 0, 4)
        box = BoundingBox(0.0, 0.0, 2.0, 3.0)
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            store.add(convoy, box)
            store.add(convoy, BoundingBox(9.0, 9.0, 10.0, 10.0))
            assert store.bbox_of(convoy) == box

    def test_batch_rolls_back_atomically(self, tmp_path):
        store = SQLiteConvoyStore(tmp_path / "c.db")
        with pytest.raises(RuntimeError, match="boom"):
            with store.batch():
                store.add(Convoy({"a", "b"}, 0, 4))
                raise RuntimeError("boom")
        assert store.count() == 0
        with store.batch():
            store.add(Convoy({"a", "b"}, 0, 4))
            store.add(Convoy({"c", "d"}, 1, 6))
        assert store.count() == 2
        store.close()

    def test_batches_do_not_nest(self, tmp_path):
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            with store.batch():
                with pytest.raises(RuntimeError, match="nest"):
                    with store.batch():
                        pass

    def test_rejects_unencodable_member_ids(self, tmp_path):
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            with pytest.raises(TypeError, match="str or int"):
                store.add(Convoy({("tuple",), "a"}, 0, 4))
            assert store.count() == 0


class TestAliveIn:
    @pytest.mark.parametrize("window", [
        (0, 500), (100, 150), (37, 37), (450, 460), (-50, -1), (0, 0),
    ])
    def test_matches_brute_force_and_forced_scan(self, store, population,
                                                 window):
        convoys, _ = population
        t1, t2 = window
        expected = canonical(
            c for c in convoys if c.t_start <= t2 and c.t_end >= t1
        )
        assert store.alive_in(t1, t2) == expected
        assert store.alive_in(t1, t2, force_scan=True) == expected

    def test_rejects_reversed_window(self, store):
        with pytest.raises(ValueError, match="reversed"):
            store.alive_in(10, 5)

    def test_empty_store_answers_empty(self, tmp_path):
        with SQLiteConvoyStore(tmp_path / "empty.db") as store:
            assert store.alive_in(0, 100) == []
            assert store.alive_in(0, 100, force_scan=True) == []

    def test_indexed_plan_uses_the_interval_index(self, store):
        plan = " ".join(
            row[3] for row in store._con.execute(
                "EXPLAIN QUERY PLAN SELECT t_start, t_end, members_json"
                " FROM convoys WHERE t_start >= ? AND t_start <= ?"
                " AND t_end >= ? ORDER BY t_start, t_end, identity",
                (0, 100, 0),
            )
        )
        assert "idx_convoys_interval" in plan
        assert "SCAN" not in plan.replace("SCAN convoys USING", "")


class TestContaining:
    def test_matches_brute_force(self, store, population):
        convoys, _ = population
        for object_id in (0, 17, "o17", 99, "o3", "missing"):
            expected = canonical(
                c for c in convoys if object_id in c.objects
            )
            assert store.containing(object_id) == expected

    def test_id_type_is_significant(self, tmp_path):
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            store.add(Convoy({5, "b"}, 0, 4))
            store.add(Convoy({"5", "c"}, 0, 4))
            assert store.containing(5) == [Convoy({5, "b"}, 0, 4)]
            assert store.containing("5") == [Convoy({"5", "c"}, 0, 4)]


class TestIntersecting:
    @pytest.mark.parametrize("box", [
        BoundingBox(0, 0, 600, 600),
        BoundingBox(200, 200, 320, 260),
        BoundingBox(0, 0, 1, 1),
        BoundingBox(900, 900, 950, 950),
    ])
    def test_matches_brute_force(self, store, population, box):
        convoys, bboxes = population
        expected = canonical(
            c for c, b in zip(convoys, bboxes)
            if b is not None
            and b.min_x <= box.max_x and b.max_x >= box.min_x
            and b.min_y <= box.max_y and b.max_y >= box.min_y
        )
        assert store.intersecting(box) == expected

    def test_boxless_store_answers_empty(self, tmp_path):
        with SQLiteConvoyStore(tmp_path / "c.db") as store:
            store.add(Convoy({"a", "b"}, 0, 4))
            assert store.intersecting(BoundingBox(0, 0, 10, 10)) == []


class TestTopK:
    @pytest.mark.parametrize("by", ["size", "duration"])
    @pytest.mark.parametrize("k", [None, 0, 1, 7, 1000])
    def test_matches_in_memory_rank(self, store, population, by, k):
        convoys, _ = population
        expected = sorted(convoys, key=lambda c: rank_key(c, by))
        if k is not None:
            expected = expected[:k]
        assert list(store.top_k(by=by, k=k)) == expected

    @pytest.mark.parametrize("by", ["size", "duration"])
    def test_alive_window_restricts_the_rank(self, store, population, by):
        convoys, _ = population
        t1, t2 = 120, 180
        expected = sorted(
            (c for c in convoys if c.t_start <= t2 and c.t_end >= t1),
            key=lambda c: rank_key(c, by),
        )
        assert list(store.top_k(by=by, alive=(t1, t2))) == expected
        assert list(store.top_k(by=by, k=3, alive=(t1, t2))) == expected[:3]

    def test_is_lazy(self, store):
        # Pulling one result must not enumerate the store: the generator
        # yields before any cursor is exhausted.
        iterator = store.top_k(by="size")
        first = next(iterator)
        assert first.size == max(c.size for c in store.all_convoys())
        iterator.close()

    def test_segment_boundaries_do_not_split_the_rank(self, tmp_path):
        # Convoys straddling many coarse segments still merge into one
        # global order (tiny segments force a genuinely k-way merge).
        convoys, bboxes = make_population(seed=5, n=60)
        with SQLiteConvoyStore(tmp_path / "c.db", segment_length=4) as s:
            s.add_batch(convoys, bboxes)
            for by in ("size", "duration"):
                expected = sorted(convoys, key=lambda c: rank_key(c, by))
                assert list(s.top_k(by=by)) == expected

    def test_rejects_unknown_dimension_and_bad_k(self, store):
        with pytest.raises(ValueError, match="'size' or 'duration'"):
            store.top_k(by="area")
        with pytest.raises(ValueError, match="k must be"):
            store.top_k(k=-1)
        with pytest.raises(ValueError, match="reversed"):
            store.top_k(alive=(10, 5))

    def test_rank_plan_uses_a_rank_index_without_sorting(self, store):
        plan = " ".join(
            row[3] for row in store._con.execute(
                "EXPLAIN QUERY PLAN SELECT size, lifetime, t_start, t_end,"
                " identity, members_json FROM convoys WHERE segment = ?"
                " ORDER BY size DESC, lifetime DESC, t_start, t_end,"
                " identity",
                (0,),
            )
        )
        assert "idx_convoys_rank_size" in plan
        assert "TEMP B-TREE" not in plan


class TestWholeStoreViews:
    def test_all_convoys_is_canonical_order(self, store, population):
        convoys, _ = population
        assert store.all_convoys() == canonical(convoys)

    def test_count(self, store, population):
        assert store.count() == len(population[0])

    def test_bbox_of(self, store, population):
        convoys, bboxes = population
        for convoy, box in zip(convoys, bboxes):
            assert store.bbox_of(convoy) == box
        assert store.bbox_of(Convoy({"nope"}, 0, 1)) is None


class TestLifecycle:
    def test_reopen_preserves_everything(self, tmp_path, population):
        convoys, bboxes = population
        path = tmp_path / "persist.db"
        with SQLiteConvoyStore(path, segment_length=16) as store:
            store.add_batch(convoys, bboxes)
        with open_store(path) as store:
            assert store.segment_length == 16  # stored value wins
            assert store.all_convoys() == canonical(convoys)
            assert store.add_batch(convoys, bboxes) == 0
            for by in ("size", "duration"):
                assert list(store.top_k(by=by)) == sorted(
                    convoys, key=lambda c: rank_key(c, by)
                )

    def test_schema_version_guard(self, tmp_path):
        path = tmp_path / "future.db"
        with SQLiteConvoyStore(path) as store:
            store._con.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        with pytest.raises(ValueError, match="schema version"):
            SQLiteConvoyStore(path)

    def test_closed_store_raises(self, tmp_path):
        store = SQLiteConvoyStore(tmp_path / "c.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            store.count()
        with pytest.raises(RuntimeError, match="closed"):
            store.add(Convoy({"a", "b"}, 0, 4))

    def test_rejects_bad_segment_length(self, tmp_path):
        with pytest.raises(ValueError, match="segment_length"):
            SQLiteConvoyStore(tmp_path / "c.db", segment_length=0)

    def test_memory_store_works(self):
        with SQLiteConvoyStore(":memory:") as store:
            store.add(Convoy({"a", "b"}, 0, 4))
            assert store.count() == 1
