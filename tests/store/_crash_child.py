"""Subprocess body for the crash-safety test (not a test module).

Mines a deterministic churn stream into a convoy store, reporting each
completed tick to a progress file *after* the tick's transaction has
committed, so the parent can SIGKILL this process at a known point and
reason exactly about which tick-prefix the store must hold.  A small
per-tick sleep widens the kill window without changing the answer.

Usage: python _crash_child.py DB_PATH PROGRESS_PATH [SLEEP_SECONDS]
"""

import os
import sys
import time

from repro.streaming import StreamingConvoyMiner, churn_stream

# The one workload both sides of the crash test mine; the parent imports
# this module for the constants, the subprocess runs it as __main__.
WORKLOAD = dict(n_objects=40, n_snapshots=150, seed=97, eps=8.0,
                churn=0.12, turnover=0.05, area=96.0)
QUERY = dict(m=3, k=4, eps=8.0)


def workload_ticks():
    return list(churn_stream(**WORKLOAD))


def main(argv):
    db_path, progress_path = argv[1], argv[2]
    sleep_seconds = float(argv[3]) if len(argv) > 3 else 0.0
    miner = StreamingConvoyMiner(
        QUERY["m"], QUERY["k"], QUERY["eps"], store=db_path
    )
    with miner:
        for t, snapshot in workload_ticks():
            miner.feed(t, snapshot)
            # The tick's transaction is committed; only now advertise it.
            with open(progress_path + ".tmp", "w") as handle:
                handle.write(str(t))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(progress_path + ".tmp", progress_path)
            if sleep_seconds:
                time.sleep(sleep_seconds)
        miner.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
