"""Unit suite for :class:`~repro.store.sink.StoreSink`.

Pins the sink's three jobs in isolation from the engine: tick-batched
commits with honest stored/replayed counters, bounding boxes computed
from exactly the positions the convoy's members reported during its
interval, and a position log pruned to the tracker's live horizon so
the sink never changes the pipeline's memory class.
"""

import pytest

from repro.core.convoy import Convoy
from repro.geometry.bbox import BoundingBox
from repro.store import SQLiteConvoyStore, StoreSink


@pytest.fixture
def store():
    with SQLiteConvoyStore(":memory:") as s:
        yield s


class TestCommit:
    def test_write_buffers_until_commit(self, store):
        sink = StoreSink(store)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        assert store.count() == 0
        sink.commit()
        assert store.count() == 1

    def test_counters_split_stored_and_replayed(self, store):
        counters = {}
        sink = StoreSink(store, counters=counters)
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        sink.write([convoy, Convoy({"c", "d"}, 1, 4)])
        sink.commit()
        assert counters["stored_convoys"] == 2
        assert counters["replayed_convoys"] == 1

    def test_empty_commit_is_free(self, store):
        counters = {}
        StoreSink(store, counters=counters).commit()
        assert counters == {"stored_convoys": 0, "replayed_convoys": 0}


class TestBoundingBoxes:
    def test_box_covers_members_over_the_interval_only(self, store):
        sink = StoreSink(store)
        # Tick 0-2 belong to the convoy; tick 3 (far away) does not, and
        # object "z" is never a member.
        sink.observe(0, {"a": (0.0, 0.0), "b": (1.0, 2.0), "z": (99.0, 99.0)})
        sink.observe(1, {"a": (2.0, 1.0), "b": (1.0, 0.5)})
        sink.observe(2, {"a": (1.5, 3.0), "b": (0.5, 1.0)})
        sink.observe(3, {"a": (50.0, 50.0), "b": (50.0, 50.0)})
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) == BoundingBox(0.0, 0.0, 2.0, 3.0)

    def test_member_absent_from_a_tick_is_skipped(self, store):
        sink = StoreSink(store)
        sink.observe(0, {"a": (0.0, 0.0), "b": (1.0, 1.0)})
        sink.observe(1, {"a": (2.0, 2.0)})  # b unreported this tick
        convoy = Convoy({"a", "b"}, 0, 1)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) == BoundingBox(0.0, 0.0, 2.0, 2.0)

    def test_no_observations_means_no_box(self, store):
        sink = StoreSink(store)
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) is None


class TestPositionLogPruning:
    def test_prunes_below_the_live_horizon(self, store):
        sink = StoreSink(store)
        for t in range(6):
            sink.observe(t, {"a": (float(t), 0.0)})
        sink.commit(oldest_live_start=4)
        assert sorted(sink._positions) == [4, 5]

    def test_no_live_chain_clears_the_log(self, store):
        sink = StoreSink(store)
        sink.observe(0, {"a": (0.0, 0.0)})
        sink.commit(oldest_live_start=None)
        assert sink._positions == {}


class TestClose:
    def test_close_commits_pending(self, store):
        sink = StoreSink(store)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        sink.close()
        assert store.count() == 1
        assert not store._closed  # sink does not own this store

    def test_owned_store_is_closed(self, tmp_path):
        store = SQLiteConvoyStore(tmp_path / "c.db")
        sink = StoreSink(store, owns_store=True)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        sink.close()
        assert store._closed
        with SQLiteConvoyStore(tmp_path / "c.db") as reopened:
            assert reopened.count() == 1
