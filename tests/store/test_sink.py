"""Unit suite for :class:`~repro.store.sink.StoreSink`.

Pins the sink's three jobs in isolation from the engine: tick-batched
commits with honest stored/replayed counters, bounding boxes computed
from exactly the positions the convoy's members reported during its
interval, and a position log pruned to the tracker's live horizon so
the sink never changes the pipeline's memory class — plus the
lifecycle-safety contract: ``close`` is idempotent and a commit that
fails mid-tick neither drops its batch nor leaves the store's WAL
transaction dangling.
"""

import pytest

from repro.core.convoy import Convoy
from repro.geometry.bbox import BoundingBox
from repro.store import SQLiteConvoyStore, StoreSink
from repro.streaming import StreamingConvoyMiner


@pytest.fixture
def store():
    with SQLiteConvoyStore(":memory:") as s:
        yield s


class TestCommit:
    def test_write_buffers_until_commit(self, store):
        sink = StoreSink(store)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        assert store.count() == 0
        sink.commit()
        assert store.count() == 1

    def test_counters_split_stored_and_replayed(self, store):
        counters = {}
        sink = StoreSink(store, counters=counters)
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        sink.write([convoy, Convoy({"c", "d"}, 1, 4)])
        sink.commit()
        assert counters["stored_convoys"] == 2
        assert counters["replayed_convoys"] == 1

    def test_empty_commit_is_free(self, store):
        counters = {}
        StoreSink(store, counters=counters).commit()
        assert counters == {"stored_convoys": 0, "replayed_convoys": 0}


class TestBoundingBoxes:
    def test_box_covers_members_over_the_interval_only(self, store):
        sink = StoreSink(store)
        # Tick 0-2 belong to the convoy; tick 3 (far away) does not, and
        # object "z" is never a member.
        sink.observe(0, {"a": (0.0, 0.0), "b": (1.0, 2.0), "z": (99.0, 99.0)})
        sink.observe(1, {"a": (2.0, 1.0), "b": (1.0, 0.5)})
        sink.observe(2, {"a": (1.5, 3.0), "b": (0.5, 1.0)})
        sink.observe(3, {"a": (50.0, 50.0), "b": (50.0, 50.0)})
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) == BoundingBox(0.0, 0.0, 2.0, 3.0)

    def test_member_absent_from_a_tick_is_skipped(self, store):
        sink = StoreSink(store)
        sink.observe(0, {"a": (0.0, 0.0), "b": (1.0, 1.0)})
        sink.observe(1, {"a": (2.0, 2.0)})  # b unreported this tick
        convoy = Convoy({"a", "b"}, 0, 1)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) == BoundingBox(0.0, 0.0, 2.0, 2.0)

    def test_no_observations_means_no_box(self, store):
        sink = StoreSink(store)
        convoy = Convoy({"a", "b"}, 0, 2)
        sink.write([convoy])
        sink.commit()
        assert store.bbox_of(convoy) is None


class TestPositionLogPruning:
    def test_prunes_below_the_live_horizon(self, store):
        sink = StoreSink(store)
        for t in range(6):
            sink.observe(t, {"a": (float(t), 0.0)})
        sink.commit(oldest_live_start=4)
        assert sorted(sink._positions) == [4, 5]

    def test_no_live_chain_clears_the_log(self, store):
        sink = StoreSink(store)
        sink.observe(0, {"a": (0.0, 0.0)})
        sink.commit(oldest_live_start=None)
        assert sink._positions == {}


class TestClose:
    def test_close_commits_pending(self, store):
        sink = StoreSink(store)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        sink.close()
        assert store.count() == 1
        assert not store._closed  # sink does not own this store

    def test_owned_store_is_closed(self, tmp_path):
        store = SQLiteConvoyStore(tmp_path / "c.db")
        sink = StoreSink(store, owns_store=True)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        sink.close()
        assert store._closed
        with SQLiteConvoyStore(tmp_path / "c.db") as reopened:
            assert reopened.count() == 1


class _FlakyStore(SQLiteConvoyStore):
    """Store whose ``add_batch`` dies mid-transaction ``failures``
    times — modelling a backend that does *not* clean up after itself
    (the SQLite one does; a remote one might not)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures = 0

    def add_batch(self, convoys, bboxes=None):
        if self.failures:
            self.failures -= 1
            self._con.execute("BEGIN IMMEDIATE")
            raise RuntimeError("simulated mid-batch failure")
        return super().add_batch(convoys, bboxes)


class TestLifecycleSafety:
    def test_close_is_idempotent(self, store):
        counters = {}
        sink = StoreSink(store, counters=counters)
        sink.write([Convoy({"a", "b"}, 0, 2)])
        sink.close()
        sink.close()
        assert store.count() == 1
        assert counters["stored_convoys"] == 1

    def test_failed_commit_retains_the_batch(self):
        with _FlakyStore(":memory:") as store:
            sink = StoreSink(store)
            sink.write([Convoy({"a", "b"}, 0, 2)])
            store.failures = 1
            with pytest.raises(RuntimeError, match="mid-batch"):
                sink.commit()
            store.rollback()
            # Nothing was dropped: the retry persists the same batch.
            assert sink._pending
            sink.commit()
            assert store.count() == 1
            assert sink._pending == []

    def test_close_after_failed_commit_rolls_back(self):
        with _FlakyStore(":memory:") as store:
            sink = StoreSink(store)
            sink.write([Convoy({"a", "b"}, 0, 2)])
            store.failures = 1
            with pytest.raises(RuntimeError, match="mid-batch"):
                sink.close()
            # First close re-raised but rolled the store's transaction
            # back; a second close is a silent no-op.
            assert not store._con.in_transaction
            sink.close()
            store.add(Convoy({"c", "d"}, 1, 3))  # store still usable
            assert store.count() == 1

    def test_store_rollback_abandons_an_open_batch(self, store):
        batch = store.batch()
        batch.__enter__()
        store.add(Convoy({"a", "b"}, 0, 2))
        store.rollback()
        assert not store._con.in_transaction
        assert store.count() == 0
        # Non-batch writes work again after the abandoned batch.
        assert store.add(Convoy({"a", "b"}, 0, 2))
        assert store.count() == 1

    def test_store_rollback_is_idempotent_and_safe_when_closed(self):
        store = SQLiteConvoyStore(":memory:")
        store.rollback()
        store.rollback()
        store.close()
        store.rollback()  # closed store: silent no-op

    def test_store_close_rolls_back_an_abandoned_batch(self, tmp_path):
        store = SQLiteConvoyStore(tmp_path / "c.db")
        batch = store.batch()
        batch.__enter__()
        store.add(Convoy({"a", "b"}, 0, 2))
        store.close()  # never COMMITted: must not persist, must not hang
        with SQLiteConvoyStore(tmp_path / "c.db") as reopened:
            assert reopened.count() == 0

    def test_miner_double_exit_is_safe(self, tmp_path):
        miner = StreamingConvoyMiner(2, 2, 1.0, store=tmp_path / "c.db")
        with miner:
            for t in range(3):
                miner.feed(t, {"a": (0.0, 0.0), "b": (0.5, 0.0)})
            miner.flush()
        miner.__exit__(None, None, None)  # second exit: no-op, no raise
        miner.close()
        with SQLiteConvoyStore(tmp_path / "c.db") as reopened:
            assert reopened.all_convoys() == [Convoy({"a", "b"}, 0, 2)]


class TestCounterIsolation:
    def test_two_default_sinks_never_share_counters(self, store):
        with SQLiteConvoyStore(":memory:") as other:
            first = StoreSink(store)
            second = StoreSink(other)
            assert first.counters is not second.counters
            first.write([Convoy({"a", "b"}, 0, 2)])
            first.commit()
            assert first.counters["stored_convoys"] == 1
            assert second.counters["stored_convoys"] == 0

    def test_two_default_miners_never_share_counters(self):
        with StreamingConvoyMiner(2, 2, 1.0) as one, \
                StreamingConvoyMiner(2, 2, 1.0) as two:
            assert one.counters is not two.counters
            one.feed(0, {"a": (0.0, 0.0), "b": (0.5, 0.0)})
            assert one.counters["snapshots"] == 1
            assert two.counters["snapshots"] == 0
