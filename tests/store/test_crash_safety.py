"""Crash safety: SIGKILL (and SIGINT) mid-stream leaves a clean
tick-prefix, and a restarted stream resumes into the same store without
duplicates.

The child process (``_crash_child.py``) mines a deterministic churn
stream into a store and advertises tick ``t`` in a progress file only
*after* tick ``t``'s transaction committed.  The parent kills it with
SIGKILL (no cleanup, no atexit, no WAL checkpoint) partway through, so
the reopened store must hold **exactly** the convoys emitted up to some
tick ``T`` with ``progress <= T <= progress + 1`` — the one-tick slack
being a commit that landed after the last progress write.  Anything
less means a committed transaction was lost; anything more or torn
means a partial tick leaked.

The restart half then replays the full stream into the surviving store:
emissions must equal an uncrashed run's, every pre-crash row must be
accounted a replay (idempotent identity upsert), and the final store
must be indistinguishable from one written in a single uninterrupted
run.

The SIGINT half exercises the *graceful* interrupt path through the
real CLI: ``stream --store --pace`` is Ctrl-C'd mid-stream and must
exit 130 with an ``interrupted after N snapshot(s)`` summary and the
same committed-tick-prefix store guarantee — the regression being a
mid-stream interrupt that unwound past the sink and lost the tail.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import _crash_child
from repro.store import SQLiteConvoyStore, convoy_identity
from repro.streaming import StreamingConvoyMiner

KILL_AFTER_TICK = 40
TICK_SLEEP = 0.01
DEADLINE = 60.0


def canonical(convoys):
    return sorted(convoys, key=lambda c: (c.t_start, c.t_end,
                                          convoy_identity(c)))


def cumulative_prefixes():
    """identity->convoy maps of everything emitted up to each tick,
    from an in-process run of the child's exact workload."""
    miner = StreamingConvoyMiner(
        _crash_child.QUERY["m"], _crash_child.QUERY["k"],
        _crash_child.QUERY["eps"],
    )
    prefixes, emitted = {}, {}
    with miner:
        for t, snapshot in _crash_child.workload_ticks():
            for convoy in miner.feed(t, snapshot):
                emitted[convoy_identity(convoy)] = convoy
            prefixes[t] = dict(emitted)
        flushed = miner.flush()
        for convoy in flushed:
            emitted[convoy_identity(convoy)] = convoy
    return prefixes, emitted


def read_progress(path):
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return None
    return int(text) if text else None


@pytest.fixture(scope="module")
def reference():
    return cumulative_prefixes()


class TestSigkillMidStream:
    def test_prefix_survives_and_restart_resumes(self, tmp_path, reference):
        prefixes, full = reference
        assert len(prefixes) > KILL_AFTER_TICK + 20, (
            "workload too short to kill mid-stream"
        )
        db_path = str(tmp_path / "crash.db")
        progress_path = str(tmp_path / "progress")
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, str(Path(_crash_child.__file__)),
             db_path, progress_path, str(TICK_SLEEP)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + DEADLINE
            while True:
                progress = read_progress(progress_path)
                if progress is not None and progress >= KILL_AFTER_TICK:
                    break
                if child.poll() is not None:
                    stderr = child.stderr.read().decode()
                    pytest.fail(
                        f"child exited (rc={child.returncode}) before the "
                        f"kill point: {stderr}"
                    )
                if time.monotonic() > deadline:
                    pytest.fail("child never reached the kill point")
                time.sleep(0.005)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
            child.stderr.close()
        assert child.returncode == -signal.SIGKILL

        progress = read_progress(progress_path)
        assert progress is not None and progress < max(prefixes), (
            "child finished the whole stream; the kill landed too late "
            "to test anything"
        )

        # -- the crash half: exactly a tick-prefix survived ------------
        with SQLiteConvoyStore(db_path) as store:
            survived = store.all_convoys()
            assert all(store.bbox_of(c) is not None for c in survived)
        survived_ids = {convoy_identity(c) for c in survived}
        acceptable = {
            t: prefixes[t]
            for t in (progress, progress + 1) if t in prefixes
        }
        matches = [t for t, prefix in acceptable.items()
                   if survived_ids == set(prefix)]
        assert matches, (
            f"store is not a clean tick-prefix: progress={progress}, "
            f"store holds {len(survived_ids)} identities, expected one of "
            f"{[len(p) for p in acceptable.values()]}"
        )
        crash_tick = matches[0]
        assert canonical(survived) == canonical(
            acceptable[crash_tick].values()
        )

        # -- the restart half: resume without duplicates ---------------
        counters = {}
        miner = StreamingConvoyMiner(
            _crash_child.QUERY["m"], _crash_child.QUERY["k"],
            _crash_child.QUERY["eps"], store=db_path, counters=counters,
        )
        emitted = []
        with miner:
            for t, snapshot in _crash_child.workload_ticks():
                emitted.extend(miner.feed(t, snapshot))
            emitted.extend(miner.flush())
        assert {convoy_identity(c) for c in emitted} == set(full), (
            "restarted run emitted a different answer"
        )
        assert counters["replayed_convoys"] >= len(survived_ids)
        assert counters["stored_convoys"] == len(full) - len(survived_ids)
        with SQLiteConvoyStore(db_path) as store:
            assert store.count() == len(full)
            assert store.all_convoys() == canonical(full.values())


def store_count(db_path):
    """Count committed rows (WAL allows reading alongside the writer)."""
    try:
        with SQLiteConvoyStore(db_path) as store:
            return store.count()
    except Exception:
        return 0  # child still creating the database


class TestSigintMidStream:
    def test_stream_cli_commits_prefix_and_exits_130(self, tmp_path,
                                                     reference):
        prefixes, _ = reference
        csv_path = tmp_path / "workload.csv"
        with open(csv_path, "w") as handle:
            handle.write("object_id,t,x,y\n")
            for t, snapshot in _crash_child.workload_ticks():
                for object_id, (x, y) in snapshot.items():
                    handle.write(f"{object_id},{t},{x},{y}\n")
        db_path = str(tmp_path / "sigint.db")
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "stream", str(csv_path),
             "-m", str(_crash_child.QUERY["m"]),
             "-k", str(_crash_child.QUERY["k"]),
             "-e", str(_crash_child.QUERY["eps"]),
             "--store", db_path, "--pace", str(TICK_SLEEP), "--quiet"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + DEADLINE
            while store_count(db_path) < 3:
                if child.poll() is not None:
                    pytest.fail(
                        "child finished before the interrupt: "
                        + child.stderr.read().decode()
                    )
                if time.monotonic() > deadline:
                    pytest.fail("store never accumulated enough convoys")
                time.sleep(0.005)
            child.send_signal(signal.SIGINT)
            stdout, stderr = child.communicate(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate(timeout=30)
        assert child.returncode == 130, stderr.decode()
        assert "interrupted after" in stdout.decode()
        assert "snapshot(s)" in stdout.decode()

        # The graceful-interrupt contract: the store holds *exactly*
        # the convoys emitted up to some completed tick — the close
        # path committed the tick in progress instead of losing it.
        with SQLiteConvoyStore(db_path) as store:
            survived = store.all_convoys()
            assert all(store.bbox_of(c) is not None for c in survived)
        survived_ids = {convoy_identity(c) for c in survived}
        matches = [t for t, prefix in prefixes.items()
                   if survived_ids == set(prefix)]
        assert matches, (
            f"store is not a clean tick-prefix: holds "
            f"{len(survived_ids)} identities"
        )
        assert len(survived_ids) >= 3  # the interrupt landed mid-stream
