"""Tests for simplification statistics (Figure 15 inputs)."""

import random

import pytest

from repro.simplification import (
    douglas_peucker,
    simplification_report,
    vertex_reduction,
)
from repro.trajectory.trajectory import Trajectory


def line(n):
    return Trajectory("o", [(float(i), 0.0, i) for i in range(n)])


def test_vertex_reduction_on_a_line():
    simplified = douglas_peucker(line(10), 0.1)
    assert vertex_reduction([simplified]) == pytest.approx(80.0)


def test_vertex_reduction_empty():
    assert vertex_reduction([]) == 0.0


def test_report_fields():
    simplified = douglas_peucker(line(10), 0.1)
    report = simplification_report([simplified])
    assert report["original_points"] == 10
    assert report["kept_points"] == 2
    assert report["vertex_reduction_pct"] == pytest.approx(80.0)
    assert report["max_actual_tolerance"] <= 0.1


def test_report_empty():
    report = simplification_report([])
    assert report["kept_points"] == 0
    assert report["vertex_reduction_pct"] == 0.0


def test_report_aggregates_multiple_trajectories():
    rng = random.Random(0)
    trajectories = []
    for i in range(5):
        pts = []
        x = y = 0.0
        for t in range(30):
            x += rng.uniform(-3, 3)
            y += rng.uniform(-3, 3)
            pts.append((x, y, t))
        trajectories.append(Trajectory(f"o{i}", pts))
    simplified = [douglas_peucker(tr, 2.0) for tr in trajectories]
    report = simplification_report(simplified)
    assert report["original_points"] == 150
    assert 0 < report["kept_points"] <= 150
    assert report["max_actual_tolerance"] <= 2.0
    assert 0.0 <= report["mean_actual_tolerance"] <= report["max_actual_tolerance"]
