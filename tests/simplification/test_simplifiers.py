"""Tests shared across DP, DP+, and DP* — the soundness invariants every
simplifier must satisfy for the Lemma 1-3 bounds to hold."""

import math
import random

import pytest

from repro.geometry.distance import point_segment_distance
from repro.simplification import (
    SIMPLIFIERS,
    douglas_peucker,
    douglas_peucker_plus,
    douglas_peucker_star,
)
from repro.trajectory.trajectory import Trajectory

ALL = [douglas_peucker, douglas_peucker_plus, douglas_peucker_star]
IDS = ["dp", "dp+", "dp*"]


def random_trajectory(rng, n, step=4.0):
    x, y = rng.uniform(-50, 50), rng.uniform(-50, 50)
    points = []
    t = 0
    for _ in range(n):
        points.append((x, y, t))
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        t += rng.randint(1, 3)  # irregular sampling
    return Trajectory("o", points)


def deviation_of(simplifier, simplified, original_point, segment):
    """The deviation measure the simplifier promises to bound."""
    if simplifier is douglas_peucker_star:
        proj = segment.location_at(original_point.t)
        return math.hypot(
            original_point.x - proj[0], original_point.y - proj[1]
        )
    return point_segment_distance(
        original_point.xy, segment.start, segment.end
    )


@pytest.mark.parametrize("simplifier", ALL, ids=IDS)
class TestSoundness:
    def test_keeps_endpoints(self, simplifier):
        tr = random_trajectory(random.Random(0), 30)
        simplified = simplifier(tr, 5.0)
        assert simplified.points[0] == tr[0]
        assert simplified.points[-1] == tr[-1]

    def test_kept_points_are_original_samples(self, simplifier):
        tr = random_trajectory(random.Random(1), 40)
        simplified = simplifier(tr, 3.0)
        original = set(tr)
        for p in simplified.points:
            assert p in original

    def test_actual_tolerance_never_exceeds_delta(self, simplifier):
        rng = random.Random(2)
        for _ in range(20):
            tr = random_trajectory(rng, rng.randint(2, 60))
            delta = rng.uniform(0.1, 10)
            simplified = simplifier(tr, delta)
            for tolerance in simplified.tolerances:
                assert tolerance <= delta + 1e-9

    def test_every_sample_within_actual_tolerance(self, simplifier):
        """Definition 4: δ(l') bounds the deviation of every original
        sample the chord replaced — the invariant Lemmas 1-3 rest on."""
        rng = random.Random(3)
        for _ in range(20):
            tr = random_trajectory(rng, rng.randint(2, 50))
            delta = rng.uniform(0.5, 8)
            simplified = simplifier(tr, delta)
            for point in tr:
                covering = [
                    (seg, tol)
                    for seg, tol in zip(simplified.segments, simplified.tolerances)
                    if seg.covers_time(point.t)
                ]
                assert covering, f"no segment covers t={point.t}"
                assert any(
                    deviation_of(simplifier, simplified, point, seg)
                    <= tol + 1e-9
                    for seg, tol in covering
                )

    def test_zero_delta_keeps_shape(self, simplifier):
        """δ = 0 may only drop points that are exactly on a chord."""
        rng = random.Random(4)
        tr = random_trajectory(rng, 25)
        simplified = simplifier(tr, 0.0)
        for point in tr:
            covering = [
                seg for seg in simplified.segments if seg.covers_time(point.t)
            ]
            assert any(
                deviation_of(simplifier, simplified, point, seg) <= 1e-9
                for seg in covering
            )

    def test_single_point_trajectory(self, simplifier):
        tr = Trajectory("o", [(3.0, 4.0, 7)])
        simplified = simplifier(tr, 1.0)
        assert len(simplified) == 1
        assert len(simplified.segments) == 1
        assert simplified.segments[0].duration == 0
        assert simplified.tolerances == (0.0,)

    def test_two_point_trajectory(self, simplifier):
        tr = Trajectory("o", [(0, 0, 0), (5, 5, 3)])
        simplified = simplifier(tr, 1.0)
        assert len(simplified) == 2
        assert simplified.tolerances == (0.0,)

    def test_collinear_collapses_to_one_segment(self, simplifier):
        tr = Trajectory("o", [(float(i), 0.0, i) for i in range(10)])
        simplified = simplifier(tr, 0.5)
        assert len(simplified.segments) == 1
        assert simplified.reduction_ratio == pytest.approx(0.8)

    def test_segments_are_time_contiguous(self, simplifier):
        tr = random_trajectory(random.Random(5), 40)
        simplified = simplifier(tr, 4.0)
        for prev, cur in zip(simplified.segments, simplified.segments[1:]):
            assert prev.t_end == cur.t_start

    def test_negative_delta_rejected(self, simplifier):
        tr = Trajectory("o", [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(ValueError):
            simplifier(tr, -0.1)

    def test_huge_delta_keeps_only_endpoints(self, simplifier):
        tr = random_trajectory(random.Random(6), 30)
        simplified = simplifier(tr, 1e9)
        assert len(simplified) == 2


class TestRelativeBehaviour:
    """The comparative properties of Section 6.1/6.2 and Figure 15."""

    def _reductions(self, seed, delta):
        rng = random.Random(seed)
        tr = random_trajectory(rng, 200)
        return {
            name: simplifier(tr, delta)
            for name, simplifier in SIMPLIFIERS.items()
        }

    def test_dp_reduces_at_least_as_much_as_dp_star(self):
        """DP* measures a deviation that is >= DP's for the same chord, so
        DP* keeps at least as many points (Figure 15(a))."""
        for seed in range(8):
            results = self._reductions(seed, delta=5.0)
            assert len(results["dp*"]) >= len(results["dp"])

    def test_dp_plus_tends_to_keep_more_points_than_dp(self):
        """DP+'s balanced splits sacrifice reduction power (Section 6.1);
        aggregated over trials it keeps at least as many points."""
        kept_dp = kept_plus = 0
        for seed in range(8):
            results = self._reductions(seed, delta=5.0)
            kept_dp += len(results["dp"])
            kept_plus += len(results["dp+"])
        assert kept_plus >= kept_dp

    def test_larger_delta_never_keeps_more_points(self):
        rng = random.Random(30)
        tr = random_trajectory(rng, 150)
        for simplifier in ALL:
            small = simplifier(tr, 1.0)
            large = simplifier(tr, 6.0)
            assert len(large) <= len(small)

    def test_dp_star_time_ratio_example(self):
        """Figure 3: a point spatially on the chord but temporally displaced
        is kept by DP* and dropped by DP."""
        # Object sits near the start for a long time, then jumps: the
        # middle sample lies exactly on the chord's line (DP drops it) but
        # far from the chord's time-ratio location (DP* keeps it).
        tr = Trajectory("o", [(0, 0, 0), (1, 0, 9), (10, 0, 10)])
        dp_result = douglas_peucker(tr, 0.5)
        star_result = douglas_peucker_star(tr, 0.5)
        assert len(dp_result) == 2
        assert len(star_result) == 3
