"""Tests for the CuTS family — filter behaviour, refinement, and the
exactness guarantee (CuTS == CMC) that is the paper's headline claim."""

import random

import pytest

from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.cuts import VARIANTS, CutsResult, cuts, cuts_filter, refinement_unit
from repro.core.verification import convoy_sets_equal, normalize_convoys
from repro.simplification import SIMPLIFIERS
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def random_database(seed, n_lo=4, n_hi=12, t_hi=40):
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    T = rng.randint(10, t_hi)
    trajs = []
    for i in range(n):
        a = rng.randint(0, T // 2)
        b = rng.randint(a + 3, T)
        pts = []
        x, y = rng.uniform(0, 50), rng.uniform(0, 50)
        for t in range(a, b + 1):
            x += rng.uniform(-2, 2)
            y += rng.uniform(-2, 2)
            if rng.random() < 0.85 or t in (a, b):
                pts.append((x, y, t))
        trajs.append(Trajectory(f"o{i}", pts))
    return TrajectoryDatabase(trajs), rng


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


def straight(oid, x0, y0, t0, t1):
    return (oid, [(x0 + (t - t0), y0, t) for t in range(t0, t1 + 1)])


class TestParameterValidation:
    def test_unknown_variant(self):
        db = db_of(straight("a", 0, 0, 0, 5))
        with pytest.raises(ValueError):
            cuts(db, 2, 2, 1.0, variant="cuts**")

    def test_bad_query_params(self):
        db = db_of(straight("a", 0, 0, 0, 5))
        with pytest.raises(ValueError):
            cuts(db, 0, 2, 1.0)
        with pytest.raises(ValueError):
            cuts(db, 2, 0, 1.0)
        with pytest.raises(ValueError):
            cuts(db, 2, 2, -1.0)

    def test_empty_database(self):
        result = cuts(TrajectoryDatabase(), 2, 2, 1.0)
        assert result.convoys == []

    def test_variant_registry_matches_paper_table(self):
        assert VARIANTS["cuts"] == {"simplifier": "dp", "distance_mode": "dll"}
        assert VARIANTS["cuts+"] == {"simplifier": "dp+", "distance_mode": "dll"}
        assert VARIANTS["cuts*"] == {"simplifier": "dp*", "distance_mode": "cpa"}


class TestSimpleQueries:
    @pytest.mark.parametrize("variant", ["cuts", "cuts+", "cuts*"])
    def test_parallel_pair(self, variant):
        db = db_of(
            straight("a", 0, 0, 0, 9),
            straight("b", 0, 1, 0, 9),
            straight("c", 0, 200, 0, 9),
        )
        result = cuts(db, 2, 5, 2.0, variant=variant)
        assert result.convoys == [Convoy(["a", "b"], 0, 9)]

    @pytest.mark.parametrize("variant", ["cuts", "cuts+", "cuts*"])
    def test_no_convoy(self, variant):
        db = db_of(
            straight("a", 0, 0, 0, 9),
            straight("b", 0, 500, 0, 9),
        )
        result = cuts(db, 2, 5, 2.0, variant=variant)
        assert result.convoys == []

    def test_result_instrumentation(self):
        db = db_of(
            straight("a", 0, 0, 0, 9),
            straight("b", 0, 1, 0, 9),
        )
        result = cuts(db, 2, 5, 2.0, delta=0.5, lam=3)
        assert isinstance(result, CutsResult)
        assert result.delta == 0.5
        assert result.lam == 3
        assert set(result.durations) == {"simplification", "filter", "refinement"}
        assert result.total_time >= 0
        assert result.refinement_unit > 0
        assert result.simplification["original_points"] == 20

    def test_auto_parameters_derived(self):
        db, _ = random_database(0)
        result = cuts(db, 2, 3, 5.0)
        assert result.delta > 0
        assert result.lam >= 2


class TestFilterStep:
    def _simplify(self, db, delta, name="dp"):
        return [SIMPLIFIERS[name](tr, delta) for tr in db]

    def test_filter_never_dismisses_true_convoy(self):
        """Core guarantee: every CMC convoy lies inside some candidate
        (objects within the candidate's window clusters, interval within
        the candidate's window)."""
        for seed in range(25):
            db, rng = random_database(seed)
            m, k = rng.randint(2, 3), rng.randint(2, 5)
            eps = rng.uniform(3, 9)
            delta = rng.uniform(0.1, eps)
            lam = rng.randint(1, 8)
            exact = cmc(db, m, k, eps)
            simplified = self._simplify(db, delta)
            candidates = cuts_filter(
                simplified, m, k, eps, lam, db.min_time, db.max_time
            )
            for convoy in exact:
                holder = [
                    c
                    for c in candidates
                    if c.t_start <= convoy.t_start
                    and convoy.t_end <= c.t_end
                    and convoy.objects <= c.union
                ]
                assert holder, f"seed={seed}: {convoy} missed by the filter"

    def test_filter_stats_populated(self):
        db, _ = random_database(3)
        stats = {}
        simplified = self._simplify(db, 1.0)
        cuts_filter(
            simplified, 2, 2, 5.0, 4, db.min_time, db.max_time,
            filter_stats=stats,
        )
        assert stats.get("pairs_considered", 0) >= stats.get("pairs_linked", 0)

    def test_lambda_one_equals_snapshot_granularity(self):
        db = db_of(
            straight("a", 0, 0, 0, 9),
            straight("b", 0, 1, 0, 9),
        )
        simplified = self._simplify(db, 0.1)
        candidates = cuts_filter(simplified, 2, 5, 2.0, 1, 0, 9)
        assert any(
            c.t_start == 0 and c.t_end == 9 and c.objects == frozenset({"a", "b"})
            for c in candidates
        )

    def test_refinement_unit_formula(self):
        from repro.core.candidates import ClosedCandidate

        candidate = ClosedCandidate(
            frozenset({"a", "b"}), 0, 5,
            (
                (0, 2, frozenset({"a", "b", "c"})),   # 3^2 * 3 = 27
                (3, 5, frozenset({"a", "b"})),        # 2^2 * 3 = 12
            ),
        )
        assert refinement_unit([candidate]) == 39.0


class TestExactness:
    """CuTS/CuTS+/CuTS* return exactly CMC's answer — the paper's
    correctness claim, for random databases and adversarial parameters."""

    @pytest.mark.parametrize("variant", ["cuts", "cuts+", "cuts*"])
    def test_equals_cmc_on_random_databases(self, variant):
        for seed in range(20):
            db, rng = random_database(seed * 7 + 1)
            m, k = rng.randint(2, 3), rng.randint(2, 6)
            eps = rng.uniform(3, 10)
            exact = normalize_convoys(cmc(db, m, k, eps))
            result = cuts(
                db, m, k, eps,
                delta=rng.uniform(0.1, eps),
                lam=rng.randint(1, 2 * k),
                variant=variant,
            )
            assert convoy_sets_equal(exact, result.convoys), (
                f"seed={seed} m={m} k={k} eps={eps:.2f}"
            )

    @pytest.mark.parametrize("variant", ["cuts", "cuts+", "cuts*"])
    def test_equals_cmc_with_extreme_delta(self, variant):
        """δ larger than e is allowed (slow filter, still exact)."""
        db, _ = random_database(77)
        exact = normalize_convoys(cmc(db, 2, 3, 5.0))
        result = cuts(db, 2, 3, 5.0, delta=12.0, lam=2, variant=variant)
        assert convoy_sets_equal(exact, result.convoys)

    def test_exactness_without_actual_tolerance(self):
        """Figure 14's global-tolerance mode is slower, never wrong."""
        db, _ = random_database(78)
        exact = normalize_convoys(cmc(db, 2, 3, 5.0))
        result = cuts(
            db, 2, 3, 5.0, delta=2.0, lam=3, use_actual_tolerance=False
        )
        assert convoy_sets_equal(exact, result.convoys)

    def test_exactness_without_lemma2(self):
        db, _ = random_database(79)
        exact = normalize_convoys(cmc(db, 2, 3, 5.0))
        result = cuts(db, 2, 3, 5.0, delta=2.0, lam=3, use_lemma2=False)
        assert convoy_sets_equal(exact, result.convoys)

    def test_actual_tolerance_filters_no_worse(self):
        """Figure 14: actual tolerances can only shrink the refinement
        workload relative to the global tolerance."""
        db, _ = random_database(80)
        with_actual = cuts(db, 2, 3, 5.0, delta=3.0, lam=3)
        with_global = cuts(
            db, 2, 3, 5.0, delta=3.0, lam=3, use_actual_tolerance=False
        )
        assert with_actual.refinement_unit <= with_global.refinement_unit
