"""Property tests for Lemmas 1-3 — the filter's no-false-dismissal core.

Each lemma is tested in its contrapositive operational form: whenever the
lemma's premise holds for a pair of simplified segments, the *original*
objects must be farther than ``e`` apart at every shared time point.
"""

import math
import random

from repro.clustering.polyline import PartitionPolyline
from repro.core.bounds import lemma1_prunes, lemma2_prunes, lemma3_prunes, omega
from repro.geometry.distance import point_distance
from repro.simplification import douglas_peucker, douglas_peucker_star
from repro.trajectory.trajectory import Trajectory


def random_trajectory(rng, n, step=4.0):
    x, y = rng.uniform(-40, 40), rng.uniform(-40, 40)
    points = []
    t = 0
    for _ in range(n):
        points.append((x, y, t))
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        t += rng.randint(1, 2)
    return Trajectory("o", points)


def shared_times(tr_a, tr_b):
    lo = max(tr_a.start_time, tr_b.start_time)
    hi = min(tr_a.end_time, tr_b.end_time)
    return range(lo, hi + 1)


def segment_covering(simplified, t):
    for segment, tolerance in zip(simplified.segments, simplified.tolerances):
        if segment.covers_time(t):
            return segment, tolerance
    raise AssertionError(f"no segment covers t={t}")


class TestLemma1:
    def test_premise_implies_separation(self):
        rng = random.Random(21)
        checked = 0
        for trial in range(150):
            tr_a = random_trajectory(rng, rng.randint(2, 25))
            tr_b = random_trajectory(rng, rng.randint(2, 25))
            delta = rng.uniform(0.2, 6)
            eps = rng.uniform(0.5, 8)
            sa = douglas_peucker(tr_a, delta)
            sb = douglas_peucker(tr_b, delta)
            for t in shared_times(tr_a, tr_b):
                seg_a, tol_a = segment_covering(sa, t)
                seg_b, tol_b = segment_covering(sb, t)
                if lemma1_prunes(seg_a, tol_a, seg_b, tol_b, eps):
                    checked += 1
                    assert point_distance(
                        tr_a.location_at(t), tr_b.location_at(t)
                    ) > eps
        assert checked > 50  # the premise must actually fire sometimes

    def test_close_pair_never_pruned(self):
        # Two identical trajectories: distance 0 at every time; the lemma
        # premise must never hold.
        tr = random_trajectory(random.Random(5), 20)
        simplified = douglas_peucker(tr, 2.0)
        for segment, tolerance in zip(simplified.segments, simplified.tolerances):
            assert not lemma1_prunes(segment, tolerance, segment, tolerance, 1.0)


class TestLemma3:
    def test_premise_implies_separation(self):
        rng = random.Random(22)
        checked = 0
        for trial in range(150):
            tr_a = random_trajectory(rng, rng.randint(2, 25))
            tr_b = random_trajectory(rng, rng.randint(2, 25))
            delta = rng.uniform(0.2, 6)
            eps = rng.uniform(0.5, 8)
            sa = douglas_peucker_star(tr_a, delta)
            sb = douglas_peucker_star(tr_b, delta)
            for t in shared_times(tr_a, tr_b):
                seg_a, tol_a = segment_covering(sa, t)
                seg_b, tol_b = segment_covering(sb, t)
                if lemma3_prunes(seg_a, tol_a, seg_b, tol_b, eps):
                    checked += 1
                    assert point_distance(
                        tr_a.location_at(t), tr_b.location_at(t)
                    ) > eps
        assert checked > 50

    def test_lemma3_at_least_as_sharp_as_lemma1(self):
        """D* >= DLL, so whenever Lemma 1 prunes a DP*-simplified pair,
        Lemma 3 prunes it too."""
        rng = random.Random(23)
        for trial in range(100):
            tr_a = random_trajectory(rng, rng.randint(2, 20))
            tr_b = random_trajectory(rng, rng.randint(2, 20))
            sa = douglas_peucker_star(tr_a, 2.0)
            sb = douglas_peucker_star(tr_b, 2.0)
            eps = rng.uniform(0.5, 8)
            for t in shared_times(tr_a, tr_b):
                seg_a, tol_a = segment_covering(sa, t)
                seg_b, tol_b = segment_covering(sb, t)
                if lemma1_prunes(seg_a, tol_a, seg_b, tol_b, eps):
                    assert lemma3_prunes(seg_a, tol_a, seg_b, tol_b, eps)


class TestLemma2:
    def test_premise_implies_lemma1_for_every_member(self):
        rng = random.Random(24)
        fired = 0
        for trial in range(100):
            tr_q = random_trajectory(rng, rng.randint(2, 15))
            group = [random_trajectory(rng, rng.randint(2, 15)) for _ in range(4)]
            delta = rng.uniform(0.2, 4)
            eps = rng.uniform(0.5, 6)
            sq = douglas_peucker(tr_q, delta)
            simplified_group = [douglas_peucker(tr, delta) for tr in group]
            segs = [s.segments[0] for s in simplified_group]
            tols = [s.tolerances[0] for s in simplified_group]
            group_box = segs[0].bbox
            for seg in segs[1:]:
                group_box = group_box.union(seg.bbox)
            group_tol = max(tols)
            seg_q, tol_q = sq.segments[0], sq.tolerances[0]
            if lemma2_prunes(seg_q.bbox, tol_q, group_box, group_tol, eps):
                fired += 1
                for seg, tol in zip(segs, tols):
                    assert lemma1_prunes(seg_q, tol_q, seg, tol, eps)
        assert fired > 10


class TestOmega:
    def test_omega_lower_bounds_true_distance(self):
        """ω(o'q, o'i) <= min over shared t of D(oq(t), oi(t)) — the
        pruning value never overestimates the true closest approach."""
        rng = random.Random(25)
        for trial in range(60):
            tr_a = random_trajectory(rng, rng.randint(3, 20))
            tr_b = random_trajectory(rng, rng.randint(3, 20))
            times = shared_times(tr_a, tr_b)
            if not times:
                continue
            for simplify, mode in (
                (douglas_peucker, "dll"),
                (douglas_peucker_star, "cpa"),
            ):
                sa = simplify(tr_a, 2.0)
                sb = simplify(tr_b, 2.0)
                poly_a = PartitionPolyline("a", sa.segments, sa.tolerances)
                poly_b = PartitionPolyline("b", sb.segments, sb.tolerances)
                w = omega(poly_a, poly_b, mode)
                true_min = min(
                    point_distance(tr_a.location_at(t), tr_b.location_at(t))
                    for t in times
                )
                assert w <= true_min + 1e-9

    def test_omega_infinite_for_disjoint_times(self):
        a = Trajectory("a", [(0, 0, 0), (1, 0, 3)])
        b = Trajectory("b", [(0, 0, 10), (1, 0, 13)])
        sa = douglas_peucker(a, 0.5)
        sb = douglas_peucker(b, 0.5)
        poly_a = PartitionPolyline("a", sa.segments, sa.tolerances)
        poly_b = PartitionPolyline("b", sb.segments, sb.tolerances)
        assert omega(poly_a, poly_b) == math.inf
