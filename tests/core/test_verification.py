"""Tests for convoy validation, normalization, and the Fig 19 metrics."""

import pytest

from repro.core.convoy import Convoy
from repro.core.verification import (
    convoy_sets_equal,
    false_negative_rate,
    false_positive_rate,
    is_valid_convoy,
    normalize_convoys,
)
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


def parallel_pair_db():
    return db_of(
        ("a", [(t, 0, t) for t in range(10)]),
        ("b", [(t, 1, t) for t in range(10)]),
        ("far", [(t, 100, t) for t in range(10)]),
    )


class TestIsValidConvoy:
    def test_valid(self):
        db = parallel_pair_db()
        assert is_valid_convoy(db, Convoy(["a", "b"], 0, 9), 2, 5, 2.0)

    def test_too_small(self):
        db = parallel_pair_db()
        assert not is_valid_convoy(db, Convoy(["a", "b"], 0, 9), 3, 5, 2.0)

    def test_too_short(self):
        db = parallel_pair_db()
        assert not is_valid_convoy(db, Convoy(["a", "b"], 0, 2), 2, 5, 2.0)

    def test_not_connected(self):
        db = parallel_pair_db()
        assert not is_valid_convoy(db, Convoy(["a", "far"], 0, 9), 2, 5, 2.0)

    def test_member_not_alive_through_interval(self):
        db = db_of(
            ("a", [(t, 0, t) for t in range(10)]),
            ("b", [(t, 1, t) for t in range(5)]),
        )
        assert not is_valid_convoy(db, Convoy(["a", "b"], 0, 9), 2, 3, 2.0)
        assert is_valid_convoy(db, Convoy(["a", "b"], 0, 4), 2, 3, 2.0)


class TestNormalization:
    def test_removes_exact_duplicates(self):
        c = Convoy(["a", "b"], 0, 9)
        assert normalize_convoys([c, c, c]) == [c]

    def test_removes_dominated(self):
        big = Convoy(["a", "b", "c"], 0, 10)
        frag = Convoy(["a", "b"], 2, 8)
        assert normalize_convoys([frag, big]) == [big]

    def test_keeps_incomparable(self):
        long_small = Convoy(["a", "b"], 0, 10)
        short_big = Convoy(["a", "b", "c"], 3, 6)
        result = normalize_convoys([long_small, short_big])
        assert set(result) == {long_small, short_big}

    def test_deterministic_order(self):
        convoys = [
            Convoy(["b", "c"], 5, 9),
            Convoy(["a", "b"], 0, 4),
            Convoy(["a", "c"], 2, 7),
        ]
        assert normalize_convoys(convoys) == normalize_convoys(
            list(reversed(convoys))
        )

    def test_empty(self):
        assert normalize_convoys([]) == []

    def test_sets_equal(self):
        a = [Convoy(["a", "b"], 0, 9), Convoy(["a", "b"], 2, 5)]
        b = [Convoy(["a", "b"], 0, 9)]
        assert convoy_sets_equal(a, b)
        assert not convoy_sets_equal(a, [Convoy(["a", "b"], 0, 8)])


class TestQualityRates:
    def test_false_positive_rate(self):
        db = parallel_pair_db()
        reported = [
            Convoy(["a", "b"], 0, 9),     # valid
            Convoy(["a", "far"], 0, 9),   # invalid (not connected)
        ]
        assert false_positive_rate(reported, db, 2, 5, 2.0) == pytest.approx(50.0)

    def test_false_positive_rate_empty(self):
        db = parallel_pair_db()
        assert false_positive_rate([], db, 2, 5, 2.0) == 0.0

    def test_false_negative_rate(self):
        exact = [Convoy(["a", "b"], 0, 9), Convoy(["c", "d"], 0, 9)]
        reported = [Convoy(["a", "b", "x"], 0, 9)]  # covers the first only
        assert false_negative_rate(reported, exact) == pytest.approx(50.0)

    def test_false_negative_partial_interval_is_a_miss(self):
        exact = [Convoy(["a", "b"], 0, 9)]
        reported = [Convoy(["a", "b"], 0, 5)]
        assert false_negative_rate(reported, exact) == pytest.approx(100.0)

    def test_false_negative_rate_empty_exact(self):
        assert false_negative_rate([Convoy(["a"], 0, 1)], []) == 0.0
