"""Tests for the candidate tracker — the heart of CMC and the CuTS filter."""

import pytest

from repro.clustering.incremental import (
    APPEARED,
    CHANGED,
    UNCHANGED,
    ClusterDelta,
)
from repro.core.candidates import CandidateTracker, ClosedCandidate
from repro.core.convoy import Convoy


def convoys_of(records):
    return [r.as_convoy() for r in records]


def delta_of(*status_by_id):
    """Build a ClusterDelta from ``(cluster_id, status)`` pairs."""
    return ClusterDelta(
        ids=tuple(cid for cid, _status in status_by_id),
        status=tuple(status for _cid, status in status_by_id),
        vanished=(),
    )


class TestBasicLifecycle:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CandidateTracker(0, 1)
        with pytest.raises(ValueError):
            CandidateTracker(1, 0)

    def test_single_persistent_cluster(self):
        tracker = CandidateTracker(2, 3)
        for t in range(5):
            assert tracker.advance([{"a", "b"}], t, t) == []
        closed = convoys_of(tracker.flush())
        assert closed == [Convoy(["a", "b"], 0, 4)]

    def test_short_lived_cluster_not_reported(self):
        tracker = CandidateTracker(2, 3)
        tracker.advance([{"a", "b"}], 0, 0)
        tracker.advance([{"a", "b"}], 1, 1)
        closed = tracker.advance([], 2, 2)  # dies at lifetime 2 < k=3
        assert closed == []
        assert tracker.flush() == []

    def test_death_reports_qualifying_run(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b"}], 0, 0)
        tracker.advance([{"a", "b"}], 1, 1)
        closed = convoys_of(tracker.advance([], 2, 2))
        assert closed == [Convoy(["a", "b"], 0, 1)]

    def test_empty_step_kills_all_candidates(self):
        """The gap-handling deviation: no clusters ends every chain."""
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b"}], 0, 0)
        tracker.advance([{"a", "b"}], 1, 1)
        tracker.advance([], 2, 2)
        tracker.advance([{"a", "b"}], 3, 3)
        tracker.advance([{"a", "b"}], 4, 4)
        closed = convoys_of(tracker.flush())
        # Two separate runs, not one bridged [0, 4] run.
        assert closed == [Convoy(["a", "b"], 3, 4)]

    def test_clusters_below_m_ignored(self):
        tracker = CandidateTracker(3, 1)
        tracker.advance([{"a", "b"}], 0, 0)
        assert tracker.live_candidates == []

    def test_steps_must_advance(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b"}], 0, 3)
        with pytest.raises(ValueError):
            tracker.advance([{"a", "b"}], 3, 5)  # overlaps previous window

    def test_reversed_window_rejected(self):
        tracker = CandidateTracker(2, 2)
        with pytest.raises(ValueError):
            tracker.advance([], 5, 3)


class TestIntersectionSemantics:
    def test_candidate_narrows_to_intersection(self):
        tracker = CandidateTracker(2, 10)
        tracker.advance([{"a", "b", "c"}], 0, 0)
        tracker.advance([{"a", "b", "d"}], 1, 1)
        live = tracker.live_candidates
        assert Convoy(["a", "b"], 0, 1) in live

    def test_paper_example_table2(self):
        """The running example of Table 2 / Figure 5 (m=2, k=3): the
        convoy ⟨o2, o3, [t1, t3]⟩ is reported via v1 = c11 ∩ c12 ∩ c23."""
        tracker = CandidateTracker(2, 3)
        closed = []
        closed += tracker.advance([{"o1", "o2", "o3"}], 1, 1)        # c11
        closed += tracker.advance([{"o1", "o2", "o3", "o4"}], 2, 2)  # c12
        closed += tracker.advance([{"o2", "o3"}, {"o1", "o4"}], 3, 3)
        closed += tracker.flush()
        result = convoys_of(closed)
        assert Convoy(["o2", "o3"], 1, 3) in result
        # The narrowing run {o1,o2,o3} over [1,2] is below k and stays out.
        assert Convoy(["o1", "o2", "o3"], 1, 2) not in result

    def test_split_group_tracks_both_branches(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b", "c", "d"}], 0, 0)
        tracker.advance([{"a", "b"}, {"c", "d"}], 1, 1)
        live = tracker.live_candidates
        assert Convoy(["a", "b"], 0, 1) in live
        assert Convoy(["c", "d"], 0, 1) in live


class TestCompleteSemantics:
    def test_growing_cluster_seeds_new_candidate(self):
        """The completeness fix: when {a,b} grows to {a,b,c}, a fresh
        candidate for the full set starts (the published rule would not
        track {a,b,c} and would miss its convoy)."""
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b"}], 0, 0)
        tracker.advance([{"a", "b", "c"}], 1, 1)
        tracker.advance([{"a", "b", "c"}], 2, 2)
        closed = convoys_of(tracker.flush())
        assert Convoy(["a", "b", "c"], 1, 2) in closed
        assert Convoy(["a", "b"], 0, 2) in closed

    def test_paper_semantics_misses_grown_convoy(self):
        tracker = CandidateTracker(2, 2, paper_semantics=True)
        tracker.advance([{"a", "b"}], 0, 0)
        tracker.advance([{"a", "b", "c"}], 1, 1)
        tracker.advance([{"a", "b", "c"}], 2, 2)
        closed = convoys_of(tracker.flush())
        assert Convoy(["a", "b", "c"], 1, 2) not in closed
        assert Convoy(["a", "b"], 0, 2) in closed

    def test_stable_cluster_does_not_multiply(self):
        """Equal-set seed suppression: a stable group yields exactly one
        live candidate, not one per step."""
        tracker = CandidateTracker(2, 3)
        for t in range(50):
            tracker.advance([{"a", "b"}], t, t)
        assert len(tracker.live_candidates) == 1

    def test_report_on_narrowing(self):
        """When the member set shrinks, the pre-narrowing run is reported."""
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b", "c"}], 0, 0)
        tracker.advance([{"a", "b", "c"}], 1, 1)
        closed = convoys_of(tracker.advance([{"a", "b"}], 2, 2))
        assert closed == [Convoy(["a", "b", "c"], 0, 1)]
        # The narrowed chain keeps the original start.
        assert Convoy(["a", "b"], 0, 2) in tracker.live_candidates

    def test_paper_semantics_swallows_narrowing_run(self):
        tracker = CandidateTracker(2, 2, paper_semantics=True)
        tracker.advance([{"a", "b", "c"}], 0, 0)
        tracker.advance([{"a", "b", "c"}], 1, 1)
        closed = tracker.advance([{"a", "b"}], 2, 2)
        assert closed == []


class TestAdvanceDelta:
    def test_none_delta_is_the_classic_advance(self):
        tracker = CandidateTracker(2, 3)
        for t in range(5):
            assert tracker.advance_delta([{"a", "b"}], None, t, t) == []
        assert tracker.counters["delta_steps"] == 0
        assert tracker.counters["advance_steps"] == 5
        assert convoys_of(tracker.flush()) == [Convoy(["a", "b"], 0, 4)]

    def test_unchanged_support_splices_without_intersection(self):
        tracker = CandidateTracker(2, 3)
        cluster = {"a", "b", "c"}
        tracker.advance_delta([cluster], delta_of((7, APPEARED)), 0, 0)
        for t in range(1, 6):
            tracker.advance_delta([cluster], delta_of((7, UNCHANGED)), t, t)
        assert tracker.counters["spliced_candidates"] == 5
        assert tracker.counters["reintersected_candidates"] == 0
        assert convoys_of(tracker.flush()) == [Convoy(["a", "b", "c"], 0, 5)]

    def test_spliced_chain_window_history_matches_classic(self):
        """Splicing must extend the per-step window history exactly as the
        classic path would — refinement depends on those clusters."""
        classic = CandidateTracker(2, 2)
        delta = CandidateTracker(2, 2)
        steps = [
            ([{"a", "b", "c"}], delta_of((1, APPEARED))),
            ([{"a", "b", "c"}], delta_of((1, UNCHANGED))),
            ([{"a", "b", "d"}], delta_of((1, CHANGED))),
            ([], None),
        ]
        classic_closed = []
        delta_closed = []
        for t, (clusters, d) in enumerate(steps):
            classic_closed += classic.advance(clusters, t, t)
            delta_closed += delta.advance_delta(clusters, d, t, t)
        assert classic_closed == delta_closed
        assert [r.windows for r in delta_closed] == [
            r.windows for r in classic_closed
        ]

    def test_changed_cluster_reintersects_and_narrows(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance_delta([{"a", "b", "c"}], delta_of((1, APPEARED)), 0, 0)
        closed = tracker.advance_delta(
            [{"a", "b"}], delta_of((1, CHANGED)), 1, 1
        )
        assert closed == []  # [0,0] run is below k
        assert Convoy(["a", "b"], 0, 1) in tracker.live_candidates
        assert tracker.counters["reintersected_candidates"] == 1

    def test_vanished_support_treated_as_dirty(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance_delta([{"a", "b"}], delta_of((1, APPEARED)), 0, 0)
        # Cluster 1 dissolved; its objects reappear inside a fresh id.
        tracker.advance_delta(
            [{"a", "b", "c"}], delta_of((2, APPEARED)), 1, 1
        )
        assert Convoy(["a", "b"], 0, 1) in tracker.live_candidates

    def test_prune_then_unchanged_cluster_reseeds(self):
        """A window prune can close the only chain supported by a cluster
        that next tick reports unchanged; the cluster must seed afresh,
        exactly as the classic path would."""
        for paper_semantics in (False, True):
            tracker = CandidateTracker(
                2, 2, paper_semantics=paper_semantics
            )
            cluster = {"a", "b"}
            tracker.advance_delta([cluster], delta_of((3, APPEARED)), 0, 0)
            tracker.advance_delta([cluster], delta_of((3, UNCHANGED)), 1, 1)
            pruned = tracker.prune_longer_than(2)
            assert convoys_of(pruned) == [Convoy(["a", "b"], 0, 1)]
            assert tracker.live_candidates == []
            tracker.advance_delta([cluster], delta_of((3, UNCHANGED)), 2, 2)
            assert tracker.live_candidates == [Convoy(["a", "b"], 2, 2)]
            tracker.advance_delta([cluster], delta_of((3, UNCHANGED)), 3, 3)
            assert convoys_of(tracker.flush()) == [Convoy(["a", "b"], 2, 3)]

    def test_flush_closes_spliced_chains(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance_delta([{"a", "b"}], delta_of((1, APPEARED)), 0, 0)
        tracker.advance_delta([{"a", "b"}], delta_of((1, UNCHANGED)), 1, 1)
        assert convoys_of(tracker.flush()) == [Convoy(["a", "b"], 0, 1)]
        assert tracker.flush() == []

    def test_classic_advance_resets_supports(self):
        """After a classic step the tracker cannot trust stale supports: a
        following delta step must re-intersect, not splice."""
        tracker = CandidateTracker(2, 3)
        tracker.advance_delta([{"a", "b"}], delta_of((1, APPEARED)), 0, 0)
        tracker.advance([{"a", "b"}], 1, 1)  # no ids available
        tracker.advance_delta([{"a", "b"}], delta_of((1, UNCHANGED)), 2, 2)
        assert tracker.counters["spliced_candidates"] == 0
        assert tracker.counters["reintersected_candidates"] >= 1
        assert convoys_of(tracker.flush()) == [Convoy(["a", "b"], 0, 2)]

    def test_delta_length_mismatch_rejected(self):
        tracker = CandidateTracker(2, 2)
        with pytest.raises(ValueError, match="delta describes"):
            tracker.advance_delta(
                [{"a", "b"}, {"c", "d"}], delta_of((1, APPEARED)), 0, 0
            )

    def test_steps_must_advance_with_both_timestamps_named(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance_delta([{"a", "b"}], delta_of((1, APPEARED)), 0, 3)
        with pytest.raises(ValueError, match=r"\[2, 5\].*3"):
            tracker.advance_delta(
                [{"a", "b"}], delta_of((1, UNCHANGED)), 2, 5
            )


class TestWindowHistories:
    def test_windows_record_chain_clusters(self):
        tracker = CandidateTracker(2, 2)
        tracker.advance([{"a", "b", "c"}], 0, 4)
        tracker.advance([{"a", "b", "d"}], 5, 9)
        closed = tracker.advance([], 10, 14)
        [record] = [c for c in closed if c.objects == frozenset({"a", "b"})]
        assert record.windows == (
            (0, 4, frozenset({"a", "b", "c"})),
            (5, 9, frozenset({"a", "b", "d"})),
        )
        assert record.union == frozenset({"a", "b", "c", "d"})

    def test_closed_candidate_convoy_views(self):
        record = ClosedCandidate(
            frozenset({"a"}), 0, 9,
            ((0, 9, frozenset({"a", "b"})),),
        )
        assert record.as_convoy() == Convoy(["a"], 0, 9)
        assert record.as_candidate_convoy() == Convoy(["a", "b"], 0, 9)
        assert record.lifetime == 10

    def test_partition_sized_windows_lifetime(self):
        """CuTS filter usage: windows longer than one tick accumulate
        lifetime in time units, matching Algorithm 2's `+= λ`."""
        tracker = CandidateTracker(2, 8)
        tracker.advance([{"a", "b"}], 0, 3)
        tracker.advance([{"a", "b"}], 4, 7)
        closed = convoys_of(tracker.flush())
        assert closed == [Convoy(["a", "b"], 0, 7)]  # lifetime 8 >= k
