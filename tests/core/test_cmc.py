"""Tests for the CMC algorithm (Section 4)."""

import pytest

from repro.core.cmc import cmc
from repro.core.convoy import Convoy
from repro.core.verification import is_valid_convoy, normalize_convoys
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def db_of(*specs):
    return TrajectoryDatabase(Trajectory(oid, pts) for oid, pts in specs)


def straight(oid, x0, y0, dx, dy, t0, t1):
    return (oid, [(x0 + dx * (t - t0), y0 + dy * (t - t0), t) for t in range(t0, t1 + 1)])


class TestParameterValidation:
    def test_bad_m(self):
        with pytest.raises(ValueError):
            cmc(db_of(straight("a", 0, 0, 1, 0, 0, 5)), 0, 1, 1.0)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            cmc(db_of(straight("a", 0, 0, 1, 0, 0, 5)), 1, 0, 1.0)

    def test_bad_eps(self):
        with pytest.raises(ValueError):
            cmc(db_of(straight("a", 0, 0, 1, 0, 0, 5)), 1, 1, 0.0)

    def test_reversed_time_range(self):
        with pytest.raises(ValueError):
            cmc(db_of(straight("a", 0, 0, 1, 0, 0, 5)), 1, 1, 1.0, time_range=(5, 2))

    def test_empty_database(self):
        assert cmc(TrajectoryDatabase(), 2, 2, 1.0) == []


class TestBasicDiscovery:
    def test_two_parallel_objects(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 0, 1, 1, 0, 0, 9),
        )
        convoys = cmc(db, 2, 5, 2.0)
        assert convoys == [Convoy(["a", "b"], 0, 9)]

    def test_far_objects_no_convoy(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 0, 100, 1, 0, 0, 9),
        )
        assert cmc(db, 2, 5, 2.0) == []

    def test_lifetime_threshold(self):
        # Together for exactly 4 time points.
        a = ("a", [(0, 0, t) for t in range(4)] + [(100 + t, 0, t) for t in range(4, 10)])
        b = ("b", [(0, 1, t) for t in range(10)])
        db = db_of(a, b)
        assert cmc(db, 2, 5, 2.0) == []
        found = cmc(db, 2, 4, 2.0)
        assert found == [Convoy(["a", "b"], 0, 3)]

    def test_m_threshold(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 0, 1, 1, 0, 0, 9),
        )
        assert cmc(db, 3, 2, 2.0) == []

    def test_density_connected_chain_counts_as_group(self):
        # a-b-c in a line, spacing 1.5, eps 2: pairwise a-c distance is 3
        # > eps but the chain makes them one convoy (the anti-lossy-flock
        # property).
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 1.5, 0, 1, 0, 0, 9),
            straight("c", 3.0, 0, 1, 0, 0, 9),
        )
        convoys = cmc(db, 3, 5, 2.0)
        assert convoys == [Convoy(["a", "b", "c"], 0, 9)]

    def test_time_range_restriction(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 0, 1, 1, 0, 0, 9),
        )
        convoys = cmc(db, 2, 3, 2.0, time_range=(4, 8))
        assert convoys == [Convoy(["a", "b"], 4, 8)]


class TestIrregularSampling:
    def test_virtual_points_bridge_missing_samples(self):
        # b is sampled only at the ends; linear interpolation keeps it next
        # to a throughout (Section 4's virtual points).
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            ("b", [(0, 1, 0), (9, 1, 9)]),
        )
        convoys = cmc(db, 2, 5, 2.0)
        assert convoys == [Convoy(["a", "b"], 0, 9)]

    def test_gap_with_too_few_objects_breaks_convoy(self):
        # b disappears during [4, 5]: the k consecutive time points cannot
        # bridge the gap (this is where Algorithm 1's literal "skip this
        # iteration" would produce a wrong answer).
        a = straight("a", 0, 0, 1, 0, 0, 9)
        b = ("b", [(t, 1, t) for t in range(0, 4)])
        b2 = ("b2", [(t, 1, t) for t in range(6, 10)])
        db = db_of(a, b, b2)
        convoys = normalize_convoys(cmc(db, 2, 3, 2.0))
        assert Convoy(["a", "b"], 0, 3) in convoys
        assert Convoy(["a", "b2"], 6, 9) in convoys
        assert all(c.lifetime <= 4 for c in convoys)

    def test_counters(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            ("b", [(0, 1, 0), (9, 1, 9)]),
        )
        counters = {}
        cmc(db, 2, 5, 2.0, counters=counters)
        assert counters["clustering_calls"] == 10
        assert counters["interpolated_points"] == 8  # b at t=1..8


class TestSemantics:
    def test_group_splits_and_reforms_reported_twice(self):
        # a,b together [0,4], apart [5,7], together again [8,12].
        points_a = []
        for t in range(13):
            if 5 <= t <= 7:
                points_a.append((0, 50, t))
            else:
                points_a.append((0, 0, t))
        db = db_of(("a", points_a), ("b", [(1, 0, t) for t in range(13)]))
        convoys = normalize_convoys(cmc(db, 2, 3, 2.0))
        assert Convoy(["a", "b"], 0, 4) in convoys
        assert Convoy(["a", "b"], 8, 12) in convoys

    def test_complete_semantics_reports_grown_group(self):
        # c joins a,b from t=5; the superset convoy [5, 14] must be found.
        db = db_of(
            straight("a", 0, 0, 0, 0, 0, 14),
            straight("b", 1, 0, 0, 0, 0, 14),
            ("c", [(0, 100, t) for t in range(5)] + [(0.5, 1, t) for t in range(5, 15)]),
        )
        convoys = normalize_convoys(cmc(db, 2, 5, 2.0))
        assert Convoy(["a", "b"], 0, 14) in convoys
        assert Convoy(["a", "b", "c"], 5, 14) in convoys

    def test_paper_semantics_misses_grown_group(self):
        db = db_of(
            straight("a", 0, 0, 0, 0, 0, 14),
            straight("b", 1, 0, 0, 0, 0, 14),
            ("c", [(0, 100, t) for t in range(5)] + [(0.5, 1, t) for t in range(5, 15)]),
        )
        convoys = normalize_convoys(cmc(db, 2, 5, 2.0, paper_semantics=True))
        assert Convoy(["a", "b"], 0, 14) in convoys
        assert Convoy(["a", "b", "c"], 5, 14) not in convoys

    def test_every_reported_convoy_is_valid(self):
        import random

        rng = random.Random(12)
        trajs = []
        for i in range(10):
            a = rng.randint(0, 10)
            b = rng.randint(a + 3, 25)
            pts = []
            x, y = rng.uniform(0, 30), rng.uniform(0, 30)
            for t in range(a, b + 1):
                x += rng.uniform(-2, 2)
                y += rng.uniform(-2, 2)
                pts.append((x, y, t))
            trajs.append(Trajectory(f"o{i}", pts))
        db = TrajectoryDatabase(trajs)
        convoys = cmc(db, 2, 3, 5.0)
        for convoy in convoys:
            assert is_valid_convoy(db, convoy, 2, 3, 5.0)

    def test_allowed_at_restricts_membership(self):
        db = db_of(
            straight("a", 0, 0, 1, 0, 0, 9),
            straight("b", 0, 1, 1, 0, 0, 9),
            straight("c", 0, 2, 1, 0, 0, 9),
        )
        full = normalize_convoys(cmc(db, 2, 5, 2.0))
        assert full == [Convoy(["a", "b", "c"], 0, 9)]
        restricted = normalize_convoys(
            cmc(db, 2, 5, 2.0, allowed_at=lambda t: {"a", "b"})
        )
        assert restricted == [Convoy(["a", "b"], 0, 9)]
