"""Tests for the δ / λ selection guidelines (Section 7.4)."""

import random

import pytest

from repro.core.params import compute_delta, compute_lambda
from repro.simplification import douglas_peucker
from repro.trajectory.database import TrajectoryDatabase
from repro.trajectory.trajectory import Trajectory


def random_db(seed, n=10, length=60):
    rng = random.Random(seed)
    trajs = []
    for i in range(n):
        pts = []
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        for t in range(length):
            x += rng.uniform(-3, 3)
            y += rng.uniform(-3, 3)
            pts.append((x, y, t))
        trajs.append(Trajectory(f"o{i}", pts))
    return TrajectoryDatabase(trajs)


class TestComputeDelta:
    def test_positive_and_below_cap(self):
        db = random_db(0)
        eps = 8.0
        delta = compute_delta(db, eps)
        assert 0 < delta < eps * 0.5

    def test_published_cap(self):
        db = random_db(0)
        delta = compute_delta(db, 8.0, cap_fraction=1.0)
        assert 0 < delta < 8.0

    def test_deterministic_given_seed(self):
        db = random_db(1)
        assert compute_delta(db, 5.0, seed=3) == compute_delta(db, 5.0, seed=3)

    def test_straight_line_fallback(self):
        db = TrajectoryDatabase(
            [Trajectory("o", [(float(t), 0.0, t) for t in range(20)])]
        )
        # No division tolerance exists; fall back to a fraction of e.
        assert compute_delta(db, 8.0) == pytest.approx(2.0)

    def test_rejects_bad_inputs(self):
        db = random_db(2)
        with pytest.raises(ValueError):
            compute_delta(db, 0.0)
        with pytest.raises(ValueError):
            compute_delta(db, 5.0, cap_fraction=0.0)
        with pytest.raises(ValueError):
            compute_delta(TrajectoryDatabase(), 5.0)

    def test_delta_scales_with_wiggle(self):
        """A wigglier dataset needs (and gets) a larger δ."""
        smooth = TrajectoryDatabase(
            [
                Trajectory(
                    "o",
                    [(float(t), 0.1 * (t % 2), t) for t in range(50)],
                )
            ]
        )
        rough = TrajectoryDatabase(
            [
                Trajectory(
                    "o",
                    [(float(t), 3.0 * (t % 2), t) for t in range(50)],
                )
            ]
        )
        assert compute_delta(rough, 20.0) > compute_delta(smooth, 20.0)


class TestComputeLambda:
    def test_at_least_minimum(self):
        db = random_db(3)
        simplified = [douglas_peucker(tr, 2.0) for tr in db]
        assert compute_lambda(db, simplified) >= 2

    def test_lambda_follows_kept_point_ratio(self):
        """The Section 7.4 formula, as printed, scales λ with |o'|/|o|:
        a *less* reduced dataset yields a larger λ (this is what
        reproduces Table 3's λ=36 for Cattle, where |o'| ≈ 35)."""
        rng = random.Random(4)
        trajs = []
        for i in range(6):
            pts = []
            x = 0.0
            for t in range(80):
                x += rng.uniform(0.5, 1.5)
                pts.append((x, rng.uniform(-4, 4), t))
            trajs.append(Trajectory(f"o{i}", pts))
        # Objects alive for only part of a longer domain, so the formula's
        # (1 - o.tau/T) discount does not vanish.
        trajs.append(Trajectory("pad", [(0, 0, 0), (0, 0, 300)]))
        db = TrajectoryDatabase(trajs)
        rough = [douglas_peucker(tr, 0.2) for tr in db]    # keeps more points
        smooth = [douglas_peucker(tr, 8.0) for tr in db]   # keeps fewer
        assert compute_lambda(db, rough) >= compute_lambda(db, smooth)

    def test_rejects_empty(self):
        db = random_db(5)
        with pytest.raises(ValueError):
            compute_lambda(db, [])

    def test_rejects_mismatched_ids(self):
        db = random_db(6)
        other = random_db(7)
        simplified = [douglas_peucker(tr, 2.0) for tr in other]
        for s in simplified:
            object.__setattr__(s, "object_id", f"ghost-{s.object_id}")
        with pytest.raises(ValueError):
            compute_lambda(db, simplified)

    def test_integer_result(self):
        db = random_db(8)
        simplified = [douglas_peucker(tr, 2.0) for tr in db]
        assert isinstance(compute_lambda(db, simplified), int)
