"""Hypothesis property suite: ``advance_delta`` == ``advance``, always.

The shard splice rests on one invariant chain: snapshot clusters are
disjoint, every live candidate's object set is contained in its support
cluster, therefore a candidate whose support is *unchanged* can only be
extended by that cluster, with its full member set preserved.  The
hand-written tests exercise that chain on curated examples; this suite
lets Hypothesis hunt for a counterexample.

The generator builds random tick sequences of **disjoint** clusters with
a random but *contract-consistent* churn classification per tick: every
previous cluster independently survives unchanged (same stable id, same
member set), changes (same id, freshly drawn members), or vanishes;
leftover objects form appeared clusters under fresh ids; ids are never
reused; and some ticks withhold the delta entirely (falling back to the
classic path, which resets every support).  Three trackers consume every
sequence in lockstep —

* the classic :meth:`~repro.core.candidates.CandidateTracker.advance`,
* :meth:`~repro.core.candidates.CandidateTracker.advance_delta`, and
* a :class:`~repro.streaming.sharding.ShardedCandidateTracker` running
  ``advance_delta`` across 3 serial shards

— and must agree on every closed record (objects, intervals, *and*
window histories), every live candidate set, and the final flush, under
both semantics modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.incremental import (
    APPEARED,
    CHANGED,
    UNCHANGED,
    ClusterDelta,
)
from repro.core.candidates import CandidateTracker
from repro.streaming.sharding import ShardedCandidateTracker


@st.composite
def delta_tick_sequences(draw):
    """A random sequence of ``(clusters, delta_or_None)`` ticks.

    Clusters are disjoint frozensets over a small object universe; the
    delta (when present) is consistent with the
    :class:`~repro.clustering.incremental.ClusterDelta` contract against
    the previous tick that carried one: stable ids, exact ``unchanged``
    classification, no id reuse.
    """
    n_objects = draw(st.integers(min_value=6, max_value=18))
    universe = [f"o{i}" for i in range(n_objects)]
    n_ticks = draw(st.integers(min_value=1, max_value=7))
    ticks = []
    prev = []  # [(cid, frozenset)] as of the previous tick
    next_id = 0
    for _ in range(n_ticks):
        withhold_delta = draw(st.integers(0, 9)) == 0  # ~1 in 10 classic
        clusters = []
        ids = []
        status = []
        vanished = []
        used = set()
        for cid, members in prev:
            fate = draw(st.sampled_from(["unchanged", "changed",
                                         "vanished", "vanished"]))
            if fate == "unchanged":
                clusters.append(members)
                ids.append(cid)
                status.append(UNCHANGED)
                used |= members
            elif fate == "changed":
                # Members drawn later, from the leftover pool; remember
                # the slot so disjointness holds by construction.
                clusters.append(None)
                ids.append(cid)
                status.append(CHANGED)
            else:
                vanished.append(cid)
        leftovers = [o for o in universe if o not in used]
        leftovers = draw(st.permutations(leftovers))
        cursor = 0
        # Fill the changed slots with fresh disjoint member sets.
        for index, members in enumerate(clusters):
            if members is not None:
                continue
            take = draw(st.integers(min_value=1, max_value=4))
            piece = frozenset(leftovers[cursor:cursor + take])
            cursor += take
            if piece:
                clusters[index] = piece
            else:
                # Pool exhausted: the id dissolves instead.
                clusters[index] = None
                vanished.append(ids[index])
        keep = [i for i, members in enumerate(clusters)
                if members is not None]
        clusters = [clusters[i] for i in keep]
        ids = [ids[i] for i in keep]
        status = [status[i] for i in keep]
        # Appeared clusters from whatever objects remain.
        while cursor < len(leftovers) and draw(st.booleans()):
            take = draw(st.integers(min_value=1, max_value=5))
            piece = frozenset(leftovers[cursor:cursor + take])
            cursor += take
            if not piece:
                break
            clusters.append(piece)
            ids.append(next_id)
            status.append(APPEARED)
            next_id += 1
        if withhold_delta:
            delta = None
            prev = []  # classic path resets supports; ids restart fresh
            # Ids in *future* deltas must still never collide with past
            # ones, so the counter keeps climbing.
            next_id += len(ids)
        else:
            delta = ClusterDelta(
                ids=tuple(ids),
                status=tuple(status),
                vanished=tuple(sorted(vanished)),
            )
            prev = list(zip(ids, clusters))
        ticks.append((clusters, delta))
    return ticks


@given(
    ticks=delta_tick_sequences(),
    m=st.integers(min_value=1, max_value=3),
    k=st.integers(min_value=1, max_value=3),
    paper_semantics=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_delta_path_equals_classic_path(ticks, m, k, paper_semantics):
    classic = CandidateTracker(m, k, paper_semantics=paper_semantics)
    delta_tracker = CandidateTracker(m, k, paper_semantics=paper_semantics)
    sharded = ShardedCandidateTracker(
        m, k, shards=3, executor="serial", paper_semantics=paper_semantics,
    )
    for t, (clusters, delta) in enumerate(ticks):
        expected = classic.advance(clusters, t, t)
        got_delta = delta_tracker.advance_delta(clusters, delta, t, t)
        got_sharded = sharded.advance_delta(clusters, delta, t, t)
        assert got_delta == expected, f"tick {t}: delta path diverged"
        assert got_sharded == expected, f"tick {t}: sharded path diverged"
        assert delta_tracker.live_candidates == classic.live_candidates
        assert sharded.live_candidates == classic.live_candidates
    assert delta_tracker.flush() == classic.flush() == sharded.flush()


@given(ticks=delta_tick_sequences())
@settings(max_examples=30, deadline=None)
def test_generated_sequences_respect_the_contract(ticks):
    """Guard the generator itself: disjoint clusters, truthful
    ``unchanged`` classification, no id reuse within a delta chain."""
    prev = {}
    seen_ids = set()
    for clusters, delta in ticks:
        union = set()
        for members in clusters:
            assert not (union & members), "clusters must be disjoint"
            union |= members
        if delta is None:
            prev = {}
            continue
        assert len(delta.ids) == len(clusters)
        for members, cid, status in zip(clusters, delta.ids, delta.status):
            if status == UNCHANGED:
                assert prev.get(cid) == members, (
                    "unchanged must mean identical member sets"
                )
            if status == APPEARED:
                assert cid not in seen_ids, "appeared ids must be fresh"
            seen_ids.add(cid)
        prev = dict(zip(delta.ids, clusters))
