"""Tests for the Convoy result type."""

import pytest

from repro.core.convoy import Convoy


class TestConstruction:
    def test_basic_fields(self):
        c = Convoy(["a", "b"], 3, 9)
        assert c.objects == frozenset({"a", "b"})
        assert c.interval == (3, 9)
        assert c.size == 2
        assert c.lifetime == 7

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            Convoy(["a"], 9, 3)

    def test_empty_objects_rejected(self):
        with pytest.raises(ValueError):
            Convoy([], 0, 1)

    def test_single_instant_convoy(self):
        c = Convoy(["a", "b"], 5, 5)
        assert c.lifetime == 1

    def test_immutable(self):
        c = Convoy(["a"], 0, 1)
        with pytest.raises(Exception):
            c.t_start = 7


class TestEqualityAndHashing:
    def test_equal_regardless_of_member_order(self):
        assert Convoy(["a", "b"], 0, 5) == Convoy(["b", "a"], 0, 5)

    def test_hashable(self):
        assert len({Convoy(["a"], 0, 5), Convoy(["a"], 0, 5)}) == 1

    def test_different_interval_not_equal(self):
        assert Convoy(["a"], 0, 5) != Convoy(["a"], 0, 6)

    def test_sort_key_is_deterministic(self):
        convoys = [
            Convoy(["b"], 1, 3),
            Convoy(["a"], 0, 9),
            Convoy(["a", "b"], 1, 3),
        ]
        once = sorted(convoys, key=lambda c: c.sort_key())
        twice = sorted(list(reversed(convoys)), key=lambda c: c.sort_key())
        assert once == twice


class TestDominance:
    def test_dominates_subset_in_time_and_objects(self):
        big = Convoy(["a", "b", "c"], 0, 10)
        small = Convoy(["a", "b"], 2, 8)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_self_domination(self):
        c = Convoy(["a", "b"], 0, 10)
        assert c.dominates(c)

    def test_disjoint_intervals_never_dominate(self):
        a = Convoy(["a", "b"], 0, 5)
        b = Convoy(["a", "b"], 6, 10)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable_object_sets(self):
        a = Convoy(["a", "b"], 0, 10)
        b = Convoy(["a", "c"], 2, 8)
        assert not a.dominates(b)

    def test_overlaps_time(self):
        a = Convoy(["a"], 0, 5)
        assert a.overlaps_time(Convoy(["b"], 5, 9))
        assert not a.overlaps_time(Convoy(["b"], 6, 9))


def test_repr_is_readable():
    c = Convoy(["b", "a"], 2, 4)
    assert repr(c) == "Convoy([a, b], t=[2, 4])"
