"""Tests for time partitioning and partition polyline construction."""

import pytest

from repro.core.partition import TimePartitioner, build_partition_polylines
from repro.simplification import douglas_peucker
from repro.trajectory.trajectory import Trajectory


class TestTimePartitioner:
    def test_even_division(self):
        parts = list(TimePartitioner(0, 7, 4))
        assert parts == [(0, 3), (4, 7)]

    def test_ragged_tail(self):
        parts = list(TimePartitioner(0, 9, 4))
        assert parts == [(0, 3), (4, 7), (8, 9)]

    def test_single_partition(self):
        assert list(TimePartitioner(5, 9, 100)) == [(5, 9)]

    def test_lambda_one(self):
        assert list(TimePartitioner(0, 2, 1)) == [(0, 0), (1, 1), (2, 2)]

    def test_len(self):
        assert len(TimePartitioner(0, 9, 4)) == 3
        assert len(TimePartitioner(0, 7, 4)) == 2

    def test_partitions_cover_domain_disjointly(self):
        parts = list(TimePartitioner(3, 29, 5))
        covered = []
        for lo, hi in parts:
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(3, 30))

    def test_partition_of(self):
        partitioner = TimePartitioner(0, 9, 4)
        assert partitioner.partition_of(0) == (0, 3)
        assert partitioner.partition_of(5) == (4, 7)
        assert partitioner.partition_of(9) == (8, 9)

    def test_partition_of_outside_raises(self):
        with pytest.raises(ValueError):
            TimePartitioner(0, 9, 4).partition_of(10)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TimePartitioner(5, 3, 2)
        with pytest.raises(ValueError):
            TimePartitioner(0, 9, 0)


class TestBuildPartitionPolylines:
    def _zigzag(self, oid="o", n=20):
        pts = [(float(i), float((-1) ** i * 3), i) for i in range(n)]
        return Trajectory(oid, pts)

    def test_straddling_segment_in_both_partitions(self):
        """Figure 9(b): a segment crossing the boundary must appear in both
        neighbouring partitions."""
        tr = Trajectory("o", [(0, 0, 0), (10, 0, 10)])
        simplified = douglas_peucker(tr, 0.5)  # one segment [0, 10]
        first = build_partition_polylines([simplified], 0, 4)
        second = build_partition_polylines([simplified], 5, 10)
        assert len(first) == 1 and len(second) == 1

    def test_object_absent_from_uncovered_partition(self):
        tr = Trajectory("o", [(0, 0, 0), (5, 0, 5)])
        simplified = douglas_peucker(tr, 0.5)
        assert build_partition_polylines([simplified], 6, 9) == []

    def test_global_tolerance_mode(self):
        simplified = douglas_peucker(self._zigzag(), 3.5)
        actual = build_partition_polylines([simplified], 0, 19)
        global_tol = build_partition_polylines(
            [simplified], 0, 19, use_actual_tolerance=False
        )
        assert all(t <= 3.5 for t in actual[0].tolerances)
        assert all(t == 3.5 for t in global_tol[0].tolerances)

    def test_polyline_carries_matching_tolerances(self):
        simplified = douglas_peucker(self._zigzag(), 2.0)
        [poly] = build_partition_polylines([simplified], 0, 19)
        assert len(poly.segments) == len(poly.tolerances)
