"""Tests for the convoy result-set query helpers."""

import pytest

from repro.core.convoy import Convoy
from repro.core.queries import (
    co_travel_totals,
    convoy_timeline,
    convoys_during,
    convoys_of_object,
    longest_convoy,
    participation_totals,
    summarize,
    top_convoys,
)

AB_LONG = Convoy(["a", "b"], 0, 19)          # lifetime 20, size 2
ABC_SHORT = Convoy(["a", "b", "c"], 5, 9)    # lifetime 5, size 3
CD_MED = Convoy(["c", "d"], 10, 17)          # lifetime 8, size 2
RESULTS = [AB_LONG, ABC_SHORT, CD_MED]


class TestTopConvoys:
    def test_by_duration(self):
        assert top_convoys(RESULTS, limit=2, by="duration") == [AB_LONG, CD_MED]

    def test_by_size(self):
        assert top_convoys(RESULTS, limit=1, by="size") == [ABC_SHORT]

    def test_by_mass(self):
        # masses: 40, 15, 16.
        assert top_convoys(RESULTS, limit=2, by="mass") == [AB_LONG, CD_MED]

    def test_limit_zero(self):
        assert top_convoys(RESULTS, limit=0) == []

    def test_unknown_ranking(self):
        with pytest.raises(ValueError):
            top_convoys(RESULTS, by="altitude")

    def test_deterministic_ties(self):
        a = Convoy(["a", "b"], 0, 4)
        b = Convoy(["x", "y"], 0, 4)
        assert top_convoys([b, a], by="duration") == top_convoys([a, b], by="duration")


class TestLongestConvoy:
    def test_longest(self):
        assert longest_convoy(RESULTS) == AB_LONG

    def test_empty(self):
        assert longest_convoy([]) is None


class TestSelections:
    def test_convoys_of_object(self):
        assert convoys_of_object(RESULTS, "c") == [ABC_SHORT, CD_MED]
        assert convoys_of_object(RESULTS, "zzz") == []

    def test_convoys_during(self):
        assert convoys_during(RESULTS, 18, 25) == [AB_LONG]
        assert set(convoys_during(RESULTS, 9, 10)) == {AB_LONG, ABC_SHORT, CD_MED}

    def test_convoys_during_rejects_reversed(self):
        with pytest.raises(ValueError):
            convoys_during(RESULTS, 5, 4)


class TestTotals:
    def test_co_travel_totals(self):
        totals = co_travel_totals(RESULTS)
        assert totals[frozenset(("a", "b"))] == 25  # 20 + 5
        assert totals[frozenset(("a", "c"))] == 5
        assert totals[frozenset(("c", "d"))] == 8
        assert frozenset(("a", "d")) not in totals

    def test_participation_totals(self):
        totals = participation_totals(RESULTS)
        assert totals["a"] == 25
        assert totals["c"] == 13
        assert totals["d"] == 8

    def test_empty(self):
        assert co_travel_totals([]) == {}
        assert participation_totals([]) == {}


class TestTimeline:
    def test_counts_active_convoys(self):
        timeline = convoy_timeline(RESULTS)
        assert timeline[0] == 1          # AB only
        assert timeline[7] == 2          # AB + ABC
        assert timeline[12] == 2         # AB + CD
        assert timeline[18] == 1         # CD ended at 17? no - AB runs to 19
        assert timeline[19] == 1

    def test_explicit_window(self):
        timeline = convoy_timeline(RESULTS, 8, 11)
        assert list(timeline) == [8, 9, 10, 11]
        assert timeline[9] == 2

    def test_empty(self):
        assert convoy_timeline([]) == {}


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize(RESULTS)
        assert summary["count"] == 3
        assert summary["objects"] == 4
        assert summary["max_size"] == 3
        assert summary["max_lifetime"] == 20
        assert summary["total_mass"] == 40 + 15 + 16
        assert summary["mean_size"] == pytest.approx(7 / 3)

    def test_empty_summary(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["total_mass"] == 0
